(* Relational algebra over keyed relations.

   The combination phase of the paper's evaluator (Section 3.3) is
   expressed in these operators: join and Cartesian product combine the
   reference relations of each conjunction, union evaluates the full
   disjunctive form, projection eliminates existential quantifiers and
   division universal ones (Codd's relational completeness repertoire,
   the paper's reference [5]). *)

let fresh_name base = base

(* Per-operator materialization tallies: each classic operator call
   allocates one output relation; the fused {!Stream} pipeline reports
   the operators it avoided materializing under [algebra.fused.*]. *)
let tally op = Obs.Metrics.incr ("algebra.materialized." ^ op)

(* Partitioned operators report under [algebra.par.*]; an operator call
   that stayed serial (no [par], [jobs=1], or input under the
   threshold) only shows in the [algebra.materialized.*] tally, so
   par/seq counts are recoverable as (par) vs (materialized - par). *)
let tally_par op = Obs.Metrics.incr ("algebra.par." ^ op)

(* The partitioned-evaluation skeleton shared by the classic operators:
   snapshot the input once (a counted scan, the same read the serial
   operator performs), let each worker compute a private result list
   for one contiguous chunk, then replay the per-chunk results on the
   caller in chunk order.  The caller-side replay reproduces the serial
   operator's exact insertion sequence, so the output relation — its
   contents, its iteration order, and any key-violation error — is
   identical for every [jobs] value. *)
let par_chunks p rel per_tuple =
  let src = Relation.to_array rel in
  Domain_pool.parallel_chunks ~jobs:p.Domain_pool.jobs src (fun _ chunk ->
      let buf = ref [] in
      Array.iter (fun t -> per_tuple (fun x -> buf := x :: !buf) t) chunk;
      List.rev !buf)

let select ?par ?(name = fresh_name "select") pred rel =
  tally "select";
  let out = Relation.create ~name (Relation.schema rel) in
  (match Domain_pool.active par (Relation.cardinality rel) with
  | Some p ->
    tally_par "select";
    par_chunks p rel (fun emit t -> if pred t then emit t)
    |> List.iter (List.iter (Relation.insert out))
  | None -> Relation.scan (fun t -> if pred t then Relation.insert out t) rel);
  out

let project ?par ?(name = fresh_name "project") rel names =
  tally "project";
  let schema = Relation.schema rel in
  let out_schema = Schema.project schema names in
  let positions =
    Array.of_list (List.map (Schema.index_of schema) names)
  in
  let out = Relation.create ~name out_schema in
  (match Domain_pool.active par (Relation.cardinality rel) with
  | Some p ->
    tally_par "project";
    par_chunks p rel (fun emit t -> emit (Tuple.project positions t))
    |> List.iter (List.iter (Relation.insert out))
  | None ->
    Relation.scan (fun t -> Relation.insert out (Tuple.project positions t)) rel);
  out

let rename ?(name = fresh_name "rename") rel mapping =
  let out = Relation.create ~name (Schema.rename (Relation.schema rel) mapping) in
  Relation.iter (Relation.insert out) rel;
  out

let product ?par ?(name = fresh_name "product") a b =
  tally "product";
  let out_schema = Schema.concat (Relation.schema a) (Relation.schema b) in
  let out = Relation.create ~name out_schema in
  (* Materialize the inner side once; scanning it per outer element would
     distort the scan counters the experiments report. *)
  let inner = Relation.scan_fold (fun acc t -> t :: acc) [] b in
  (match Domain_pool.active par (Relation.cardinality a) with
  | Some p ->
    tally_par "product";
    par_chunks p a (fun emit ta ->
        List.iter (fun tb -> emit (Tuple.concat ta tb)) inner)
    |> List.iter (List.iter (Relation.insert out))
  | None ->
    Relation.scan
      (fun ta ->
        List.iter (fun tb -> Relation.insert out (Tuple.concat ta tb)) inner)
      a);
  out

(* θ-join: product restricted by an arbitrary predicate over the paired
   tuples.  Nested loops; used for the non-equality join terms. *)
let theta_join ?(name = fresh_name "theta_join") pred a b =
  tally "join";
  let out_schema = Schema.concat (Relation.schema a) (Relation.schema b) in
  let out = Relation.create ~name out_schema in
  let inner = Relation.scan_fold (fun acc t -> t :: acc) [] b in
  Relation.scan
    (fun ta ->
      List.iter
        (fun tb -> if pred ta tb then Relation.insert out (Tuple.concat ta tb))
        inner)
    a;
  out

(* Join keys are value arrays (the projected tuple itself), looked up in
   array-keyed {!Value_key} tables — no per-probe list allocation. *)
let join_key positions t = Tuple.project positions t

let positions_of schema names =
  Array.of_list (List.map (Schema.index_of schema) names)

(* Hash equi-join on pairs of equated attributes; output is the
   concatenation of both sides (names must stay distinct). *)
let equi_join ?(name = fresh_name "join") ~on a b =
  tally "join";
  let sa = Relation.schema a and sb = Relation.schema b in
  let pa = positions_of sa (List.map fst on) in
  let pb = positions_of sb (List.map snd on) in
  let out = Relation.create ~name (Schema.concat sa sb) in
  let table = Value_key.acreate (max 16 (Relation.cardinality b)) in
  Relation.scan (fun tb -> Value_key.add_multi_a table (join_key pb tb) tb) b;
  Relation.scan
    (fun ta ->
      List.iter
        (fun tb -> Relation.insert out (Tuple.concat ta tb))
        (Value_key.find_multi_a table (join_key pa ta)))
    a;
  out

(* Sort-merge equi-join — the classical alternative to the hash join for
   "computing joins of relations" (the paper's references [6,9] at the
   point where the combination phase performs join and product).  Same
   contract as {!equi_join}. *)
let merge_join ?(name = fresh_name "merge_join") ~on a b =
  tally "join";
  let sa = Relation.schema a and sb = Relation.schema b in
  let pa = positions_of sa (List.map fst on) in
  let pb = positions_of sb (List.map snd on) in
  let out = Relation.create ~name (Schema.concat sa sb) in
  let key_cmp k1 k2 = Tuple.compare k1 k2 in
  let sorted rel positions =
    let items =
      Relation.scan_fold
        (fun acc t -> (join_key positions t, t) :: acc)
        [] rel
    in
    Array.of_list
      (List.sort (fun (k1, t1) (k2, t2) ->
           let c = key_cmp k1 k2 in
           if c <> 0 then c else Tuple.compare t1 t2)
         items)
  in
  let xs = sorted a pa and ys = sorted b pb in
  let nx = Array.length xs and ny = Array.length ys in
  let i = ref 0 and j = ref 0 in
  while !i < nx && !j < ny do
    let ka, _ = xs.(!i) and kb, _ = ys.(!j) in
    let c = key_cmp ka kb in
    if c < 0 then incr i
    else if c > 0 then incr j
    else begin
      (* emit the cross product of the two equal-key runs *)
      let i_end = ref !i in
      while !i_end < nx && key_cmp (fst xs.(!i_end)) ka = 0 do
        incr i_end
      done;
      let j_end = ref !j in
      while !j_end < ny && key_cmp (fst ys.(!j_end)) kb = 0 do
        incr j_end
      done;
      for x = !i to !i_end - 1 do
        for y = !j to !j_end - 1 do
          Relation.insert out (Tuple.concat (snd xs.(x)) (snd ys.(y)))
        done
      done;
      i := !i_end;
      j := !j_end
    end
  done;
  out

(* Nested-loop equi-join, for completeness of the operator suite (and as
   the reference implementation in the join-equivalence properties). *)
let nested_loop_join ?(name = fresh_name "nl_join") ~on a b =
  let sa = Relation.schema a and sb = Relation.schema b in
  let pa = positions_of sa (List.map fst on) in
  let pb = positions_of sb (List.map snd on) in
  theta_join ~name
    (fun ta tb -> Tuple.equal (join_key pa ta) (join_key pb tb))
    a b

(* Natural join: equi-join on the shared attribute names, with the
   duplicated columns of the right side projected away. *)
let natural_join ?par ?(name = fresh_name "natural_join") a b =
  let sa = Relation.schema a and sb = Relation.schema b in
  let shared = List.filter (fun n -> Schema.mem sa n) (Schema.names sb) in
  match shared with
  | [] -> product ?par ~name a b
  | _ ->
    tally "join";
    let pa = positions_of sa shared and pb = positions_of sb shared in
    let keep_b =
      List.filter (fun n -> not (Schema.mem sa n)) (Schema.names sb)
    in
    let keep_positions = positions_of sb keep_b in
    let out_schema =
      if keep_b = [] then Relation.schema a
      else
        Schema.concat sa (Schema.project sb keep_b)
    in
    let out = Relation.create ~name out_schema in
    let table = Value_key.acreate (max 16 (Relation.cardinality b)) in
    (* Build side: workers compute the join keys for their chunk; the
       caller replays the (key, tuple) pairs in chunk order, giving
       every hash bucket the same contents in the same order as the
       serial single-scan build. *)
    (match Domain_pool.active par (Relation.cardinality b) with
    | Some p ->
      tally_par "join_build";
      par_chunks p b (fun emit tb -> emit (join_key pb tb, tb))
      |> List.iter
           (List.iter (fun (key, tb) -> Value_key.add_multi_a table key tb))
    | None ->
      Relation.scan (fun tb -> Value_key.add_multi_a table (join_key pb tb) tb) b);
    (* Probe side: the table is read-only from here on, so workers probe
       it concurrently and buffer their chunk's output tuples. *)
    (match Domain_pool.active par (Relation.cardinality a) with
    | Some p ->
      tally_par "join";
      par_chunks p a (fun emit ta ->
          List.iter
            (fun tb ->
              emit
                (if keep_b = [] then ta
                 else Tuple.concat_project ta keep_positions tb))
            (Value_key.find_multi_a table (join_key pa ta)))
      |> List.iter (List.iter (Relation.insert out))
    | None ->
      Relation.scan
        (fun ta ->
          List.iter
            (fun tb ->
              let combined =
                if keep_b = [] then ta
                else Tuple.concat_project ta keep_positions tb
              in
              Relation.insert out combined)
            (Value_key.find_multi_a table (join_key pa ta)))
        a);
    out

let require_same_shape op a b =
  if not (Schema.same_shape (Relation.schema a) (Relation.schema b)) then
    Errors.schema_error "%s: incompatible schemas %a vs %a" op Schema.pp
      (Relation.schema a) Schema.pp (Relation.schema b)

let union ?(name = fresh_name "union") a b =
  tally "union";
  require_same_shape "union" a b;
  let out = Relation.create ~name (Relation.schema a) in
  Relation.scan (Relation.insert out) a;
  Relation.scan (Relation.insert out) b;
  out

let union_all ?(name = fresh_name "union") schema rels =
  tally "union";
  let out = Relation.create ~name schema in
  List.iter
    (fun r ->
      require_same_shape "union" out r;
      Relation.scan (Relation.insert out) r)
    rels;
  out

let inter ?(name = fresh_name "inter") a b =
  require_same_shape "inter" a b;
  select ~name (fun t -> Relation.mem_tuple b t) a

let diff ?(name = fresh_name "diff") a b =
  require_same_shape "diff" a b;
  select ~name (fun t -> not (Relation.mem_tuple b t)) a

(* Semijoin a ⋉ b on equated attributes: elements of a that join with at
   least one element of b (Bernstein/Chiu, the paper's reference [2]). *)
let semijoin ?(name = fresh_name "semijoin") ~on a b =
  let pa = positions_of (Relation.schema a) (List.map fst on) in
  let pb = positions_of (Relation.schema b) (List.map snd on) in
  let table = Value_key.acreate (max 16 (Relation.cardinality b)) in
  Relation.scan (fun tb -> Value_key.Atable.replace table (join_key pb tb) ()) b;
  select ~name (fun ta -> Value_key.Atable.mem table (join_key pa ta)) a

(* Antijoin a ▷ b: elements of a that join with no element of b — the
   universal-quantifier counterpart of the semijoin (Section 5's
   "extended to the case of universal quantifiers"). *)
let antijoin ?(name = fresh_name "antijoin") ~on a b =
  let pa = positions_of (Relation.schema a) (List.map fst on) in
  let pb = positions_of (Relation.schema b) (List.map snd on) in
  let table = Value_key.acreate (max 16 (Relation.cardinality b)) in
  Relation.scan (fun tb -> Value_key.Atable.replace table (join_key pb tb) ()) b;
  select ~name (fun ta -> not (Value_key.Atable.mem table (join_key pa ta))) a

(* Division r ÷ s on pairs (r attribute, s attribute): quotient tuples q
   over the remaining attributes of r such that for EVERY element of s
   the combination (q, s-values) appears in r — the relational-algebra
   rendering of universal quantification (paper Section 3.3, refs [5,11]).
   Division by an empty divisor yields all quotient projections of r
   (ALL over the empty relation holds vacuously); callers that need the
   stricter adaptation of Lemma 1 handle emptiness beforehand. *)
let divide ?(name = fresh_name "divide") ~on r s =
  tally "divide";
  let sr = Relation.schema r and ss = Relation.schema s in
  let pr_on = positions_of sr (List.map fst on) in
  let ps_on = positions_of ss (List.map snd on) in
  let quotient_names =
    List.filter
      (fun n -> not (List.mem_assoc n on))
      (Schema.names sr)
  in
  if quotient_names = [] then
    Errors.schema_error "divide: no quotient attributes remain";
  let pr_quot = positions_of sr quotient_names in
  let out_schema = Schema.project sr quotient_names in
  (* Distinct divisor images, deduplicated through a hash table rather
     than a linear membership test over the accumulator. *)
  let divisor_set = Value_key.acreate (max 16 (Relation.cardinality s)) in
  Relation.scan
    (fun t -> Value_key.Atable.replace divisor_set (join_key ps_on t) ())
    s;
  let divisor =
    Value_key.Atable.fold (fun k () acc -> k :: acc) divisor_set []
  in
  let needed = List.length divisor in
  let out = Relation.create ~name out_schema in
  if needed = 0 then begin
    Relation.scan (fun t -> Relation.insert out (Tuple.project pr_quot t)) r;
    out
  end
  else begin
    (* Group r by quotient values, collecting the set of divisor images. *)
    let groups : unit Value_key.atable Value_key.atable =
      Value_key.acreate 64
    in
    Relation.scan
      (fun t ->
        let q = join_key pr_quot t and d = join_key pr_on t in
        let images =
          match Value_key.Atable.find_opt groups q with
          | Some set -> set
          | None ->
            let set = Value_key.acreate 8 in
            Value_key.Atable.replace groups q set;
            set
        in
        Value_key.Atable.replace images d ())
      r;
    Value_key.Atable.iter
      (fun q images ->
        let covers =
          Value_key.Atable.length images >= needed
          && List.for_all (fun d -> Value_key.Atable.mem images d) divisor
        in
        if covers then Relation.insert out q)
      groups;
    out
  end

(* Fused streaming form of the operators above (combination-phase hot
   path).  A stream is a push producer: [emit k] drives every tuple of
   the (virtual) result through the consumer [k].  Chaining streams
   composes the per-tuple callbacks directly, so an operator chain
   allocates exactly one output relation — at the final {!Stream.
   materialize} — instead of one hashtable-backed relation per operator.
   Joins hash the materialized build side once (lazily, inside the
   single [emit] run) and probe it with the streamed tuples. *)
module Stream = struct
  (* Alongside the serial [emit], a stream carries an optional
     *partitionable* description of itself: the source relation it
     pulls from, a caller-side [pc_prime] that performs the shared
     one-time work (forcing join build tables, bumping the per-run
     fused tallies and build-side row counters), and [pc_stage], which
     manufactures a fresh per-worker instance of the whole consumer
     chain.  {!materialize} uses it to run the chain over per-domain
     chunks of the source: each instance is private to its chunk, the
     shared tables it reads were forced before the fork, and the
     chunk results concatenate in order — reproducing the serial
     emission sequence exactly.  Combinators that cannot be expressed
     this way (opaque sources) drop the description and the chain
     falls back to the serial [emit]. *)
  type stage = {
    feed : (Tuple.t -> unit) -> Tuple.t -> unit;
    flush : unit -> unit;
        (* report this instance's row counters to (this domain's)
           metrics registry — called once, after its chunk is fed *)
  }

  type par_chain = {
    pc_src : Relation.t;
    pc_prime : unit -> unit;
    pc_stage : unit -> stage;
  }

  (* The batched (columnar) description of the same chain.  The source
     relation is encoded once into column arrays and driven through the
     chain in windows of [batch_size] rows; each operator is a kernel
     over batches (selection vectors, column shares, integer-keyed hash
     tables) instead of a per-tuple callback.  [bt_force] performs the
     encodes of every build side (it may raise {!Batch.Unbatchable}, in
     which case {!materialize} falls back to the scalar emit before any
     counter has moved); [bt_prime] bumps the per-run tallies exactly as
     the scalar emit would; [bt_stage] manufactures a fresh per-worker
     kernel instance, mirroring [pc_stage].  Kernels reproduce the
     scalar emission order exactly — see each operator's comment. *)
  type bstage = {
    bfeed : (Batch.t -> unit) -> Batch.t -> unit;
    bflush : unit -> unit;
  }

  type bat_chain = {
    bt_src : Relation.t;
    bt_pool : Batch.pool;
    bt_force : unit -> unit;
    bt_prime : unit -> unit;
    bt_stage : unit -> bstage;
  }

  type t = {
    schema : Schema.t;
    emit : (Tuple.t -> unit) -> unit;
    par : par_chain option;
    bat : bat_chain option;
  }

  let schema s = s.schema
  let fused op = Obs.Metrics.incr ("algebra.fused." ^ op)

  let of_relation ?pool rel =
    let bt_pool =
      match pool with Some p -> p | None -> Batch.create_pool ()
    in
    {
      schema = Relation.schema rel;
      emit = (fun k -> Relation.iter k rel);
      par =
        Some
          {
            pc_src = rel;
            pc_prime = (fun () -> ());
            pc_stage = (fun () -> { feed = (fun k -> k); flush = (fun () -> ()) });
          };
      bat =
        Some
          {
            bt_src = rel;
            bt_pool;
            bt_force = (fun () -> ());
            bt_prime = (fun () -> ());
            bt_stage =
              (fun () -> { bfeed = (fun k -> k); bflush = (fun () -> ()) });
          };
    }

  let extend_par pc ~prime ~stage =
    {
      pc_src = pc.pc_src;
      pc_prime =
        (fun () ->
          pc.pc_prime ();
          prime ());
      pc_stage =
        (fun () ->
          let up = pc.pc_stage () in
          stage up);
    }

  let extend_bat bc ~force ~prime ~stage =
    {
      bc with
      bt_force =
        (fun () ->
          bc.bt_force ();
          force ());
      bt_prime =
        (fun () ->
          bc.bt_prime ();
          prime ());
      bt_stage =
        (fun () ->
          let up = bc.bt_stage () in
          stage up);
    }

  let no_force () = ()

  let select pred s =
    {
      s with
      emit =
        (fun k ->
          fused "select";
          s.emit (fun t -> if pred t then k t));
      par =
        Option.map
          (extend_par
             ~prime:(fun () -> fused "select")
             ~stage:(fun up ->
               {
                 feed = (fun k -> up.feed (fun t -> if pred t then k t));
                 flush = up.flush;
               }))
          s.par;
      (* Opaque predicates take boxed tuples, so the kernel decodes each
         live row once and refines the selection vector — downstream
         kernels never look at the dropped rows again. *)
      bat =
        Option.map
          (extend_bat ~force:no_force
             ~prime:(fun () -> fused "select")
             ~stage:(fun up ->
               {
                 bfeed =
                   (fun k ->
                     up.bfeed (fun b ->
                         k (Batch.filter b (fun i -> pred (Batch.tuple b i)))));
                 bflush = up.bflush;
               }))
          s.bat;
    }

  let project s names =
    let positions = positions_of s.schema names in
    {
      schema = Schema.project s.schema names;
      emit =
        (fun k ->
          fused "project";
          s.emit (fun t -> k (Tuple.project positions t)));
      par =
        Option.map
          (extend_par
             ~prime:(fun () -> fused "project")
             ~stage:(fun up ->
               {
                 feed = (fun k -> up.feed (fun t -> k (Tuple.project positions t)));
                 flush = up.flush;
               }))
          s.par;
      (* Columnar projection shares the retained column arrays — no
         per-row work at all. *)
      bat =
        Option.map
          (extend_bat ~force:no_force
             ~prime:(fun () -> fused "project")
             ~stage:(fun up ->
               {
                 bfeed = (fun k -> up.bfeed (fun b -> k (Batch.project b positions)));
                 bflush = up.bflush;
               }))
          s.bat;
    }

  (* Streaming duplicate elimination: a projection can multiply the rows
     every downstream operator touches, so collapse duplicates as they
     pass rather than waiting for the materialization's key table.

     In a partitioned run the [seen] table cannot be shared, so each
     chunk instance deduplicates locally; duplicates whose occurrences
     straddle chunks survive to the downstream operators and are folded
     by the materialization's whole-tuple key table.  The output
     relation is identical (first occurrences arrive in the same order)
     — only the join row *counters* downstream of a dedup can read
     higher than the serial run's, by the number of straddling
     duplicates.  DESIGN.md documents the caveat. *)
  let dedup s =
    {
      s with
      emit =
        (fun k ->
          fused "dedup";
          let seen = Value_key.acreate 64 in
          s.emit (fun t ->
              if not (Value_key.Atable.mem seen t) then begin
                Value_key.Atable.replace seen t ();
                k t
              end));
      par =
        Option.map
          (extend_par
             ~prime:(fun () -> fused "dedup")
             ~stage:(fun up ->
               let seen = Value_key.acreate 64 in
               {
                 feed =
                   (fun k ->
                     up.feed (fun t ->
                         if not (Value_key.Atable.mem seen t) then begin
                           Value_key.Atable.replace seen t ();
                           k t
                         end));
                 flush = up.flush;
               }))
          s.par;
      (* Batched dedup keeps a seen-set of integer rows: hashing machine
         ints instead of re-walking nested reference keys per tuple.
         First occurrences pass in arrival order, so the output matches
         the scalar path; the per-chunk-instance caveat under [par] is
         the same as the scalar one above. *)
      bat =
        (let arity = Schema.arity s.schema in
         let positions = Array.init arity Fun.id in
         Option.map
           (extend_bat ~force:no_force
              ~prime:(fun () -> fused "dedup")
              ~stage:(fun up ->
                let seen = Batch.Ikey.create 64 in
                {
                  bfeed =
                    (fun k ->
                      up.bfeed (fun b ->
                          k
                            (Batch.filter b (fun i ->
                                 let key = Batch.key_of_row b.Batch.cols positions i in
                                 if Batch.Ikey.mem seen key then false
                                 else begin
                                   Batch.Ikey.replace seen key ();
                                   true
                                 end))));
                  bflush = up.bflush;
                }))
           s.bat);
    }

  let product s rel =
    let out_schema = Schema.concat s.schema (Relation.schema rel) in
    (* Shared by the chunk instances; forced by [pc_prime] before the
       fork, read-only afterwards. *)
    let inner_shared = lazy (Relation.fold (fun acc t -> t :: acc) [] rel) in
    let bat =
      match s.bat with
      | None -> None
      | Some bc ->
        (* The scalar path folds the inner relation into a cons list —
           i.e. *reversed* iteration order — so the kernel walks the
           iteration-order encode backwards to emit identical rows. *)
        let enc = lazy (Batch.encode_relation bc.bt_pool rel) in
        Some
          (extend_bat bc
             ~force:(fun () -> ignore (Lazy.force enc : Batch.encoded))
             ~prime:(fun () ->
               fused "product";
               Obs.Metrics.incr
                 ~by:(Relation.cardinality rel)
                 "combination.join_rows_in")
             ~stage:(fun up ->
               let e = Lazy.force enc in
               let ni = Batch.encoded_rows e in
               let ib = Batch.of_encoded bc.bt_pool e ~off:0 ~len:ni in
               let n_in = ref 0 and n_out = ref 0 in
               {
                 bfeed =
                   (fun k ->
                     up.bfeed (fun b ->
                         let lc = Batch.live_count b in
                         n_in := !n_in + lc;
                         let m = lc * ni in
                         if m > 0 then begin
                           n_out := !n_out + m;
                           let pidx = Array.make m 0 and iidx = Array.make m 0 in
                           let j = ref 0 in
                           Batch.live_iter
                             (fun i ->
                               for r = ni - 1 downto 0 do
                                 pidx.(!j) <- i;
                                 iidx.(!j) <- r;
                                 incr j
                               done)
                             b;
                           let cols =
                             Array.append
                               (Batch.gather_cols b.Batch.cols pidx)
                               (Batch.gather_cols ib.Batch.cols iidx)
                           in
                           k (Batch.of_cols bc.bt_pool cols m)
                         end));
                 bflush =
                   (fun () ->
                     up.bflush ();
                     Obs.Metrics.incr ~by:!n_in "combination.join_rows_in";
                     Obs.Metrics.incr ~by:!n_out "combination.join_rows_out");
               }))
    in
    {
      schema = out_schema;
      emit =
        (fun k ->
          fused "product";
          let inner = Relation.fold (fun acc t -> t :: acc) [] rel in
          let n_in = ref (Relation.cardinality rel) and n_out = ref 0 in
          s.emit (fun ta ->
              incr n_in;
              List.iter
                (fun tb ->
                  incr n_out;
                  k (Tuple.concat ta tb))
                inner);
          Obs.Metrics.incr ~by:!n_in "combination.join_rows_in";
          Obs.Metrics.incr ~by:!n_out "combination.join_rows_out");
      par =
        Option.map
          (extend_par
             ~prime:(fun () ->
               fused "product";
               ignore (Lazy.force inner_shared : Tuple.t list);
               (* the serial counter starts from the inner cardinality;
                  instances then count only their own probe rows *)
               Obs.Metrics.incr
                 ~by:(Relation.cardinality rel)
                 "combination.join_rows_in")
             ~stage:(fun up ->
               let inner = Lazy.force inner_shared in
               let n_in = ref 0 and n_out = ref 0 in
               {
                 feed =
                   (fun k ->
                     up.feed (fun ta ->
                         incr n_in;
                         List.iter
                           (fun tb ->
                             incr n_out;
                             k (Tuple.concat ta tb))
                           inner));
                 flush =
                   (fun () ->
                     up.flush ();
                     Obs.Metrics.incr ~by:!n_in "combination.join_rows_in";
                     Obs.Metrics.incr ~by:!n_out "combination.join_rows_out");
               }))
          s.par;
      bat;
    }

  (* Which physical algorithm the scalar arm of {!natural_join} runs.
     The choice is the caller's (the combination phase's cost model);
     the operator guarantees identical output for all three. *)
  type join_impl = Jhash | Jnlj | Jshared_nlj

  (* Natural join with the stream as probe side and a materialized
     relation as build side.  When the build side contributes no new
     columns this degenerates to a semijoin: one emission per matching
     probe tuple, regardless of the bucket/match-list size.

     Three scalar implementations share the operator: the hash join
     (build a key table, probe per tuple), plain nested loops (walk the
     build side per probe — no build cost, wins on tiny builds), and
     shared nested loops (memoize the inner walk per distinct probe
     key, so duplicate-heavy probe streams pay one walk per key).  All
     three emit the SAME sequence: the hash table's buckets are
     cons-built in iteration order and walked front-first — reverse
     iteration order — and the nested-loop inner list is built by a
     consing fold over the same iteration, so per-probe matches surface
     in the identical order whichever algorithm runs.  The partitioned
     and batched arms therefore always run the hash machinery: output
     is byte-identical, and those arms are only active at cardinalities
     where hashing wins anyway. *)
  let natural_join ?(impl = Jhash) s rel =
    let sa = s.schema and sb = Relation.schema rel in
    let shared = List.filter (fun n -> Schema.mem sa n) (Schema.names sb) in
    match shared with
    | [] -> product s rel
    | _ ->
      let pa = positions_of sa shared and pb = positions_of sb shared in
      let keep_b =
        List.filter (fun n -> not (Schema.mem sa n)) (Schema.names sb)
      in
      let keep_positions = positions_of sb keep_b in
      let out_schema =
        if keep_b = [] then sa else Schema.concat sa (Schema.project sb keep_b)
      in
      let table =
        lazy
          (let tbl = Value_key.acreate (max 16 (Relation.cardinality rel)) in
           Relation.iter
             (fun tb -> Value_key.add_multi_a tbl (join_key pb tb) tb)
             rel;
           tbl)
      in
      let probe tbl ta per_match =
        match Value_key.Atable.find_opt tbl (join_key pa ta) with
        | None -> ()
        | Some tbs ->
          if keep_b = [] then per_match ta
          else
            List.iter
              (fun tb -> per_match (Tuple.concat_project ta keep_positions tb))
              tbs
      in
      (* Integer keys are only comparable when the paired columns encode
         into the same class (a raw int on one side and a pool id on the
         other would collide meaninglessly), so the batched form exists
         only when every shared attribute's classes agree.  Build
         buckets cons row indices in iteration order and are walked
         front-first — exactly the scalar table's LIFO bucket order. *)
      let classes_ok =
        let ok = ref true in
        Array.iteri
          (fun idx ca ->
            if
              Batch.cls_of_type (Schema.type_at sa ca)
              <> Batch.cls_of_type (Schema.type_at sb pb.(idx))
            then ok := false)
          pa;
        !ok
      in
      let bat =
        match s.bat with
        | Some bc when classes_ok ->
          let built =
            lazy
              (let e = Batch.encode_relation bc.bt_pool rel in
               let nb = Batch.encoded_rows e in
               let eb = Batch.of_encoded bc.bt_pool e ~off:0 ~len:nb in
               let tbl = Batch.Ikey.create (max 16 nb) in
               for r = 0 to nb - 1 do
                 let key = Batch.key_of_row eb.Batch.cols pb r in
                 match Batch.Ikey.find_opt tbl key with
                 | Some rows -> Batch.Ikey.replace tbl key (r :: rows)
                 | None -> Batch.Ikey.replace tbl key [ r ]
               done;
               eb, tbl)
          in
          Some
            (extend_bat bc
               ~force:(fun () ->
                 ignore (Lazy.force built : Batch.t * int list Batch.Ikey.t))
               ~prime:(fun () ->
                 fused "join";
                 Obs.Metrics.incr
                   ~by:(Relation.cardinality rel)
                   "combination.join_rows_in")
               ~stage:(fun up ->
                 let eb, tbl = Lazy.force built in
                 let n_in = ref 0 and n_out = ref 0 in
                 {
                   bfeed =
                     (fun k ->
                       up.bfeed (fun b ->
                           n_in := !n_in + Batch.live_count b;
                           if keep_b = [] then begin
                             (* Semijoin degeneration: keep the probe
                                rows whose key has a bucket. *)
                             let out =
                               Batch.filter b (fun i ->
                                   Batch.Ikey.mem tbl
                                     (Batch.key_of_row b.Batch.cols pa i))
                             in
                             let lc = Batch.live_count out in
                             if lc > 0 then begin
                               n_out := !n_out + lc;
                               k out
                             end
                           end
                           else begin
                             let pidx = Batch.Ivec.create ()
                             and bidx = Batch.Ivec.create () in
                             Batch.live_iter
                               (fun i ->
                                 match
                                   Batch.Ikey.find_opt tbl
                                     (Batch.key_of_row b.Batch.cols pa i)
                                 with
                                 | None -> ()
                                 | Some rows ->
                                   List.iter
                                     (fun r ->
                                       Batch.Ivec.push pidx i;
                                       Batch.Ivec.push bidx r)
                                     rows)
                               b;
                             let m = Batch.Ivec.length pidx in
                             if m > 0 then begin
                               n_out := !n_out + m;
                               let pidx = Batch.Ivec.to_array pidx
                               and bidx = Batch.Ivec.to_array bidx in
                               let keep_src =
                                 Array.map
                                   (fun c -> eb.Batch.cols.(c))
                                   keep_positions
                               in
                               let cols =
                                 Array.append
                                   (Batch.gather_cols b.Batch.cols pidx)
                                   (Batch.gather_cols keep_src bidx)
                               in
                               k (Batch.of_cols bc.bt_pool cols m)
                             end
                           end));
                   bflush =
                     (fun () ->
                       up.bflush ();
                       Obs.Metrics.incr ~by:!n_in "combination.join_rows_in";
                       Obs.Metrics.incr ~by:!n_out "combination.join_rows_out");
                 }))
        | _ -> None
      in
      (* The nested-loop arms' inner list: (key, tuple) pairs consed in
         iteration order, so its head is the LAST iterated tuple — the
         exact order the hash table's buckets are walked in. *)
      let keyed_inner =
        lazy (Relation.fold (fun acc tb -> (join_key pb tb, tb) :: acc) [] rel)
      in
      let keys_equal ka kb =
        let n = Array.length ka in
        Array.length kb = n
        &&
        let rec go i = i >= n || (Value.equal ka.(i) kb.(i) && go (i + 1)) in
        go 0
      in
      let emit_matches ta matches n_out k =
        if keep_b = [] then begin
          if matches <> [] then begin
            incr n_out;
            k ta
          end
        end
        else
          List.iter
            (fun tb ->
              incr n_out;
              k (Tuple.concat_project ta keep_positions tb))
            matches
      in
      let scalar_emit =
        match impl with
        | Jhash ->
          fun k ->
            fused "join";
            let tbl = Lazy.force table in
            let n_in = ref (Relation.cardinality rel) and n_out = ref 0 in
            s.emit (fun ta ->
                incr n_in;
                probe tbl ta (fun t ->
                    incr n_out;
                    k t));
            Obs.Metrics.incr ~by:!n_in "combination.join_rows_in";
            Obs.Metrics.incr ~by:!n_out "combination.join_rows_out"
        | Jnlj ->
          fun k ->
            fused "join";
            let inner = Lazy.force keyed_inner in
            let n_in = ref (Relation.cardinality rel) and n_out = ref 0 in
            s.emit (fun ta ->
                incr n_in;
                let ka = join_key pa ta in
                if keep_b = [] then begin
                  if List.exists (fun (kb, _) -> keys_equal ka kb) inner
                  then begin
                    incr n_out;
                    k ta
                  end
                end
                else
                  List.iter
                    (fun (kb, tb) ->
                      if keys_equal ka kb then begin
                        incr n_out;
                        k (Tuple.concat_project ta keep_positions tb)
                      end)
                    inner);
            Obs.Metrics.incr ~by:!n_in "combination.join_rows_in";
            Obs.Metrics.incr ~by:!n_out "combination.join_rows_out"
        | Jshared_nlj ->
          fun k ->
            fused "join";
            let inner = Lazy.force keyed_inner in
            let memo : Tuple.t list Value_key.atable =
              Value_key.acreate 64
            in
            let n_in = ref (Relation.cardinality rel) and n_out = ref 0 in
            s.emit (fun ta ->
                incr n_in;
                let ka = join_key pa ta in
                let matches =
                  match Value_key.Atable.find_opt memo ka with
                  | Some ms -> ms
                  | None ->
                    let ms =
                      List.filter_map
                        (fun (kb, tb) ->
                          if keys_equal ka kb then Some tb else None)
                        inner
                    in
                    Value_key.Atable.replace memo ka ms;
                    ms
                in
                emit_matches ta matches n_out k);
            Obs.Metrics.incr ~by:!n_in "combination.join_rows_in";
            Obs.Metrics.incr ~by:!n_out "combination.join_rows_out"
      in
      {
        schema = out_schema;
        emit = scalar_emit;
        par =
          Option.map
            (extend_par
               ~prime:(fun () ->
                 fused "join";
                 ignore (Lazy.force table : Tuple.t list Value_key.atable);
                 Obs.Metrics.incr
                   ~by:(Relation.cardinality rel)
                   "combination.join_rows_in")
               ~stage:(fun up ->
                 let tbl = Lazy.force table in
                 let n_in = ref 0 and n_out = ref 0 in
                 {
                   feed =
                     (fun k ->
                       up.feed (fun ta ->
                           incr n_in;
                           probe tbl ta (fun t ->
                               incr n_out;
                               k t)));
                   flush =
                     (fun () ->
                       up.flush ();
                       Obs.Metrics.incr ~by:!n_in "combination.join_rows_in";
                       Obs.Metrics.incr ~by:!n_out "combination.join_rows_out");
                 }))
            s.par;
        bat;
      }

  (* The chain's one output relation.  The schema is re-keyed on the
     whole tuple (set semantics, like every intermediate reference
     relation), and the insertions skip the per-value domain check:
     every emitted tuple is a projection/concatenation of tuples from
     already-checked relations.

     With [?par] active and a partitionable chain whose source clears
     the threshold, the chain runs once per chunk of the source on the
     pool: shared state is primed before the fork, each chunk instance
     buffers its emissions privately, and the buffers are replayed here
     in chunk order — the same insertion sequence as the serial emit,
     for every [jobs]. *)
  let materialize ?par ?(batch_size = 1) ?name s =
    (* Every arm preallocates the output key table from the source
       cardinality (the output bound of a select/project/dedup/join
       chain over it) and replays the same insertion sequence, so the
       resulting relation iterates identically whichever arm ran. *)
    let size_hint =
      match s.par, s.bat with
      | Some pc, _ -> Relation.cardinality pc.pc_src
      | None, Some bc -> Relation.cardinality bc.bt_src
      | None, None -> 0
    in
    let out_relation () =
      Relation.create ?name ~size_hint
        (Schema.make (Schema.attrs s.schema) ~key:[])
    in
    let serial () =
      Obs.Metrics.incr "algebra.materialized.stream";
      let out = out_relation () in
      s.emit (Relation.insert_unchecked out);
      out
    in
    let scalar () =
      match s.par with
      | None -> serial ()
      | Some pc -> (
        match Domain_pool.active par (Relation.cardinality pc.pc_src) with
        | None -> serial ()
        | Some p ->
          Obs.Metrics.incr "algebra.materialized.stream";
          tally_par "stream";
          pc.pc_prime ();
          let src = Relation.to_array_uncounted pc.pc_src in
          let out = out_relation () in
          Domain_pool.parallel_chunks ~jobs:p.Domain_pool.jobs src
            (fun _ chunk ->
              let inst = pc.pc_stage () in
              let buf = ref [] in
              let consume = inst.feed (fun t -> buf := t :: !buf) in
              Array.iter consume chunk;
              inst.flush ();
              List.rev !buf)
          |> List.iter (List.iter (Relation.insert_unchecked out));
          out)
    in
    (* Batched execution: encode the source once, drive [batch_size]-row
       windows through the kernel chain, decode the surviving rows into
       the output.  [bt_force] runs before any counter moves, so an
       {!Batch.Unbatchable} encode falls back to the scalar arms with
       identical observable behaviour.  Under [par] the windows become
       the fan-out unit — the pool hands each domain whole batches, the
       kernels run per-chunk instances over read-only shared state, and
       the decoded buffers replay in chunk order, reproducing the serial
       sequence exactly (same caveat for dedup counters as the scalar
       par path). *)
    let batched bc =
      let enc = Batch.encode_relation bc.bt_pool bc.bt_src in
      bc.bt_force ();
      Obs.Metrics.incr "algebra.materialized.stream";
      bc.bt_prime ();
      let n = Batch.encoded_rows enc in
      let out = out_relation () in
      let rows_out = ref 0 in
      let t0 = Unix.gettimeofday () in
      (match Domain_pool.active par n with
      | Some p ->
        tally_par "stream";
        let nb = (n + batch_size - 1) / batch_size in
        let batches =
          Array.init nb (fun i ->
              let off = i * batch_size in
              Batch.of_encoded bc.bt_pool enc ~off
                ~len:(min batch_size (n - off)))
        in
        Domain_pool.parallel_chunks ~jobs:p.Domain_pool.jobs batches
          (fun _ chunk ->
            let inst = bc.bt_stage () in
            let buf = ref [] in
            let consume =
              inst.bfeed (fun ob ->
                  Batch.live_iter (fun i -> buf := Batch.tuple ob i :: !buf) ob)
            in
            Array.iter consume chunk;
            inst.bflush ();
            List.rev !buf)
        |> List.iter
             (List.iter (fun t ->
                  incr rows_out;
                  Relation.insert_unchecked out t))
      | None ->
        let inst = bc.bt_stage () in
        (* Accumulate the inserted rows' integer cells alongside the
           decode, and register them as the output's insertion-order
           encode — a later set-semantics pass (the columnar divide)
           then reuses these columns instead of re-interning the whole
           intermediate.  The par arm skips this (its chunks decode in
           the workers), costing only a re-encode on fallback. *)
        let acc =
          Batch.acc_create
            (Array.init (Schema.arity s.schema) (fun c ->
                 Batch.cls_of_type (Schema.type_at s.schema c)))
        in
        let sink ob =
          Batch.live_iter
            (fun i ->
              incr rows_out;
              let before = Relation.cardinality out in
              Relation.insert_unchecked out (Batch.tuple ob i);
              if Relation.cardinality out <> before then Batch.acc_push acc ob i)
            ob
        in
        let off = ref 0 in
        while !off < n do
          let len = min batch_size (n - !off) in
          inst.bfeed sink (Batch.of_encoded bc.bt_pool enc ~off:!off ~len);
          off := !off + len
        done;
        inst.bflush ();
        Batch.register_unordered bc.bt_pool out (Batch.acc_finish acc));
      let ns = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
      Obs.Metrics.incr ~by:n "algebra.batch.rows_in";
      Obs.Metrics.incr ~by:!rows_out "algebra.batch.rows_out";
      Obs.Metrics.incr ~by:ns "algebra.batch.kernel_ns";
      out
    in
    match s.bat with
    | Some bc when batch_size > 1 -> (
      try batched bc with Batch.Unbatchable -> scalar ())
    | _ -> scalar ()
end

let cardinality = Relation.cardinality
