(* Tuples are flat arrays of values, interpreted against a schema held by
   the enclosing relation. *)

type t = Value.t array

let of_list = Array.of_list
let to_list = Array.to_list
let arity = Array.length
let get (t : t) i = t.(i)

let get_by_name schema t name = t.(Schema.index_of schema name)

let rec compare_from a b i =
  if i >= Array.length a then 0
  else
    let c = Value.compare a.(i) b.(i) in
    if c <> 0 then c else compare_from a b (i + 1)

let compare (a : t) (b : t) =
  let c = Int.compare (Array.length a) (Array.length b) in
  if c <> 0 then c else compare_from a b 0

let equal a b = compare a b = 0

let hash (t : t) =
  Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 t

let project positions (t : t) : t =
  Array.map (fun i -> t.(i)) positions

let project_names schema names (t : t) : t =
  of_list (List.map (fun n -> get_by_name schema t n) names)

let concat (a : t) (b : t) : t = Array.append a b

(* [concat a] followed by [project] of b's columns, in one allocation:
   the result is a's components then b.(positions.(i)) — the shape a
   hash join emits when it keeps only some right-hand columns. *)
let concat_project (a : t) positions (b : t) : t =
  let na = Array.length a in
  Array.init
    (na + Array.length positions)
    (fun i -> if i < na then a.(i) else b.(positions.(i - na)))

(* Key values of a tuple under a schema, as a list (the form stored in
   references and used for key lookup). *)
let key_of schema (t : t) =
  Array.to_list (Array.map (fun i -> t.(i)) (Schema.key_positions schema))

(* Does the tuple's every component belong to the declared domain? *)
let well_typed schema (t : t) =
  arity t = Schema.arity schema
  && Array.for_all
       (fun i -> Vtype.member (Schema.type_at schema i) t.(i))
       (Array.init (arity t) (fun i -> i))

let pp ppf (t : t) =
  Fmt.pf ppf "@[<h><%a>@]" (Fmt.array ~sep:Fmt.comma Value.pp) t

let to_string t = Fmt.str "%a" pp t
