(** A buffer pool over paged heap files: fixed frame count, LRU
    replacement, and fetch/miss/eviction statistics — the measured form
    of the paper's 1982 cost model (pages read from disk). *)

type stats = {
  mutable fetches : int;
  mutable misses : int;  (** the simulated disk reads *)
  mutable evictions : int;  (** dropped by LRU capacity pressure *)
  mutable invalidations : int;  (** dropped because their file was rewritten *)
}

type t

val create : capacity:int -> t
(** @raise Invalid_argument on non-positive capacity. *)

val access : t -> file:int -> page:int -> bool
(** Record an access; [true] on a buffer hit. *)

val invalidate_file : t -> file:int -> unit

val stats : t -> stats
val hit_rate : stats -> float
(** Fraction of fetches served from the pool; 0 with no fetches. *)

val reset_stats : t -> unit
val resident_count : t -> int
val pp_stats : stats Fmt.t
