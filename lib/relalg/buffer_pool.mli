(** A buffer pool over paged heap files: fixed frame count, O(1) LRU
    replacement (intrusive recency list), and fetch/miss/eviction
    statistics — the measured form of the paper's 1982 cost model
    (pages read from disk). *)

type stats = {
  mutable fetches : int;
  mutable misses : int;  (** the simulated disk reads *)
  mutable evictions : int;  (** dropped by LRU capacity pressure *)
  mutable invalidations : int;  (** dropped because their file was rewritten *)
}

type t

val create : capacity:int -> t
(** @raise Invalid_argument on non-positive capacity. *)

val access : t -> file:int -> page:int -> bool
(** Record an access; [true] on a buffer hit.  Misses at capacity evict
    the least-recently-used frame in O(1); the eviction consults the
    [pool.evict.io] failpoint.
    @raise Errors.Io_error if the injected write-back failure fires. *)

val invalidate_file : t -> file:int -> unit

val resident_keys_mru : t -> (int * int) list
(** Resident [(file, page)] keys from most- to least-recently used —
    the reverse of eviction order.  For tests and diagnostics. *)

val stats : t -> stats
val hit_rate : stats -> float
(** Fraction of fetches served from the pool; 0 with no fetches. *)

val reset_stats : t -> unit
val resident_count : t -> int
val pp_stats : stats Fmt.t
