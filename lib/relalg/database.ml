(* A database is a catalog of named relations plus the registry of the
   enumeration types their schemas mention (Figure 1's TYPE section). *)

(* Concurrency control state (see the transaction section at the end of
   this file).  Every database carries one; it costs a mutex and two
   small tables and stays inert until transactions are used. *)
type mvcc = {
  mu : Mutex.t;  (* guards rels/perm_indexes installs, pins, and this record *)
  cond : Condition.t;
  mutable commit_seq : int;  (* global commit counter *)
  mutable next_txn : int;
  last_commit : (string, int) Hashtbl.t;
      (* relation name -> commit_seq of the last installed version;
         absent = unchanged since the catalog was built (seq 0) *)
  reserved : (string, int) Hashtbl.t;
      (* relation name -> txn id of a commit past its conflict check but
         not yet installed (it is fsyncing its WAL record); a second
         writer must not pass its own check in that window *)
  mutable checkpointing : bool;
  mutable wal : Wal.t option;
  mutable snapshot_path : string option;
  mutable durable : bool;
      (* WAL-attached: committed relation states are frozen, and all
         content mutation must arrive through write transactions *)
}

let fresh_mvcc () =
  {
    mu = Mutex.create ();
    cond = Condition.create ();
    commit_seq = 0;
    next_txn = 1;
    last_commit = Hashtbl.create 16;
    reserved = Hashtbl.create 8;
    checkpointing = false;
    wal = None;
    snapshot_path = None;
    durable = false;
  }

type t = {
  rels : (string, Relation.t) Hashtbl.t;
  enums : (string, Value.enum_info) Hashtbl.t;
  perm_indexes : (string * string, Index.t) Hashtbl.t;
      (* permanent indexes, keyed by (relation, component) — paper
         Section 3.2: "The first step can be omitted, if permanent
         indexes exist", maintained as in Example 3.1 *)
  sec_indexes : (string, Secondary_index.t list) Hashtbl.t;
      (* secondary indexes per relation name: persistent access paths,
         maintained incrementally through Relation observers and copied
         on first write by MVCC transactions *)
  mutable catalog_version : int;
      (* bumped when the set of catalogued relations changes, so the
         stats epoch moves even before the new relation is populated *)
  mvcc : mvcc;
}

let create () =
  {
    rels = Hashtbl.create 16;
    enums = Hashtbl.create 16;
    perm_indexes = Hashtbl.create 8;
    sec_indexes = Hashtbl.create 8;
    catalog_version = 0;
    mvcc = fresh_mvcc ();
  }

let add_relation db r =
  let n = Relation.name r in
  if String.equal n "" then
    Errors.schema_error "cannot catalog an anonymous relation"
  else if Hashtbl.mem db.rels n then
    Errors.schema_error "relation %s already declared" n
  else begin
    Hashtbl.replace db.rels n r;
    db.catalog_version <- db.catalog_version + 1
  end

(* The stats epoch: a number that changes whenever the catalogued data
   does.  Cached plans embed the epoch they were planned under; a bump
   (insertion, deletion, clear, snapshot load — loads insert tuple by
   tuple) invalidates them, so cardinality-sensitive choices (cost-
   ordered joins, empty-range adaptation) are recomputed against the
   shifted data.  Summing per-relation versions keeps the epoch honest
   even for mutations performed directly on a {!Relation.t} handle. *)
let stats_epoch db =
  Hashtbl.fold
    (fun _ r acc -> acc + Relation.version r)
    db.rels db.catalog_version

let declare_relation db ~name schema =
  let r = Relation.create ~name schema in
  add_relation db r;
  r

let find_relation db name =
  match Hashtbl.find_opt db.rels name with
  | Some r -> r
  | None -> raise (Errors.Unknown_relation name)

let find_relation_opt db name = Hashtbl.find_opt db.rels name
let mem_relation db name = Hashtbl.mem db.rels name

let relation_names db =
  List.sort String.compare (Hashtbl.fold (fun n _ acc -> n :: acc) db.rels [])

let relations db = List.map (find_relation db) (relation_names db)

let declare_enum db name labels =
  if Hashtbl.mem db.enums name then
    Errors.schema_error "enumeration %s already declared" name
  else begin
    let info = { Value.enum_name = name; labels } in
    Hashtbl.replace db.enums name info;
    info
  end

let find_enum db name =
  match Hashtbl.find_opt db.enums name with
  | Some info -> info
  | None -> Errors.schema_error "unknown enumeration %s" name

let find_enum_opt db name = Hashtbl.find_opt db.enums name

let enums db =
  Hashtbl.fold (fun _ info acc -> info :: acc) db.enums []
  |> List.sort (fun a b ->
         String.compare a.Value.enum_name b.Value.enum_name)

(* Permanent indexes (Example 3.1's enrindex).  Registration builds the
   index with one counted scan; after updates to the base relation the
   index must be refreshed, as the paper's example maintains its index
   by hand alongside each insertion. *)
let register_index db rel_name ~on =
  let rel = find_relation db rel_name in
  let idx = Index.build rel ~on:[ on ] in
  Hashtbl.replace db.perm_indexes (rel_name, on) idx;
  idx

let permanent_index db rel_name ~on =
  Hashtbl.find_opt db.perm_indexes (rel_name, on)

let refresh_indexes db =
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) db.perm_indexes [] in
  List.iter (fun (rel, on) -> ignore (register_index db rel ~on)) keys

let permanent_index_list db =
  List.sort compare
    (Hashtbl.fold (fun (r, a) _ acc -> (r, a) :: acc) db.perm_indexes [])

(* --- Secondary indexes (persistent access paths) -------------------- *)

(* Maintenance hook: every effective mutation of [rel] updates [idx]
   incrementally.  Attached to the catalogued handle at declaration and
   to each transaction's private copy at copy-on-write time. *)
let hook_index rel idx =
  Relation.add_observer rel (function
    | Relation.Inserted t -> Secondary_index.on_insert idx t
    | Relation.Deleted t -> Secondary_index.on_delete idx t
    | Relation.Cleared -> Secondary_index.on_clear idx)

let secondary_indexes db rel_name =
  Option.value (Hashtbl.find_opt db.sec_indexes rel_name) ~default:[]

let install_secondary db idx =
  let rel_name = Secondary_index.source idx in
  Hashtbl.replace db.sec_indexes rel_name (secondary_indexes db rel_name @ [ idx ])

let declare_index ?(kind = Secondary_index.Hash) db rel_name ~on =
  let rel = find_relation db rel_name in
  if
    List.exists
      (fun i -> List.equal String.equal (Secondary_index.on i) on)
      (secondary_indexes db rel_name)
  then
    Errors.schema_error "relation %s: index on (%s) already declared" rel_name
      (String.concat ", " on);
  let idx = Secondary_index.build ~kind rel ~on in
  hook_index rel idx;
  install_secondary db idx;
  idx

let secondary_index_list db =
  Hashtbl.fold
    (fun rel idxs acc ->
      List.map
        (fun i -> (rel, Secondary_index.on i, Secondary_index.kind i))
        idxs
      @ acc)
    db.sec_indexes []
  |> List.sort compare

(* The declared single-component indexes over [attr], for access-path
   selection.  [Sorted] first, so a range-capable index wins ties. *)
let secondary_on db rel_name attr =
  List.filter
    (fun i -> match Secondary_index.on i with [ a ] -> String.equal a attr | _ -> false)
    (secondary_indexes db rel_name)
  |> List.stable_sort (fun a b ->
         compare (Secondary_index.kind b) (Secondary_index.kind a))

(* Dereference: regain the selected variable from a reference value
   (paper Section 3.1, the postfix @ operator). *)
let deref db (r : Value.reference) =
  Relation.find_key_exn (find_relation db r.Value.target) r.Value.key

let deref_value db = function
  | Value.VRef r -> deref db r
  | v -> Errors.type_error "cannot dereference non-reference %s" (Value.to_string v)

(* Attach paged storage to every catalogued relation, sharing one
   buffer pool; returns the pool for statistics. *)
let attach_storage db ~pool_pages =
  let pool = Buffer_pool.create ~capacity:pool_pages in
  Hashtbl.iter (fun _ r -> Relation.attach_storage r ~pool) db.rels;
  pool

(* One call resets *all* measurement state — relation scan/probe
   counters, permanent-index probe counters, and the stats of every
   attached buffer pool — so benchmark iterations and [analyze] runs
   never leak counts into each other.  Pools may be shared between
   relations; resetting a shared pool more than once is harmless. *)
let reset_counters db =
  Hashtbl.iter
    (fun _ r ->
      Relation.reset_counters r;
      match Relation.buffer_pool r with
      | Some pool -> Buffer_pool.reset_stats pool
      | None -> ())
    db.rels;
  Hashtbl.iter (fun _ idx -> Index.reset_counters idx) db.perm_indexes;
  Hashtbl.iter
    (fun _ idxs -> List.iter Secondary_index.reset_counters idxs)
    db.sec_indexes

let total_probes db =
  Hashtbl.fold (fun _ r acc -> acc + Relation.probe_count r) db.rels 0

let pool_stats db =
  (* The combined stats of the distinct pools attached to this
     database's relations (normally one shared pool). *)
  let pools =
    Hashtbl.fold
      (fun _ r acc ->
        match Relation.buffer_pool r with
        | Some p when not (List.memq p acc) -> p :: acc
        | Some _ | None -> acc)
      db.rels []
  in
  match pools with
  | [] -> None
  | _ ->
    let acc =
      {
        Buffer_pool.fetches = 0;
        misses = 0;
        evictions = 0;
        invalidations = 0;
      }
    in
    List.iter
      (fun p ->
        let s = Buffer_pool.stats p in
        acc.Buffer_pool.fetches <- acc.Buffer_pool.fetches + s.Buffer_pool.fetches;
        acc.Buffer_pool.misses <- acc.Buffer_pool.misses + s.Buffer_pool.misses;
        acc.Buffer_pool.evictions <-
          acc.Buffer_pool.evictions + s.Buffer_pool.evictions;
        acc.Buffer_pool.invalidations <-
          acc.Buffer_pool.invalidations + s.Buffer_pool.invalidations)
      pools;
    Some acc

let total_scans db =
  Hashtbl.fold (fun _ r acc -> acc + Relation.scan_count r) db.rels 0

let pp ppf db =
  Fmt.pf ppf "@[<v>%a@]"
    (Fmt.list ~sep:Fmt.cut Relation.pp)
    (relations db)

(* ------------------------------------------------------------------ *)
(* Durable snapshots.

   A database is saved as one self-contained binary file:

     magic "PASCALRDB2"
     u16 #enums;      each: name, u16 #labels, labels
     u16 #relations;  each (sorted by name): name, schema (u16 arity;
                      each attribute: name, domain; u16 #key, key
                      names), i64 cardinality, tuples (u16 length +
                      schema-directed record, in Tuple.compare order)
     u16 #permanent indexes; each: relation name, component name
     u16 #secondary indexes; each (sorted by (relation, components,
                      kind)): relation name, kind tag 'H'|'S', u16
                      #components, components, i64 #tuples, the index
                      pages (u16 length + schema-directed record, in
                      Tuple.compare order), u32 Adler-32 of this
                      index's section alone — a per-index page
                      checksum, verified on load; a damaged section is
                      discarded and the index rebuilt from its
                      (already checksum-verified) relation
     u32 Adler-32 of everything above

   Everything is emitted in a deterministic order, so saving the same
   logical database twice produces byte-identical files — the property
   the differential fault harness checks commits against.

   [save] is atomic: the snapshot is written to a temp file alongside
   the target, fsync'd, and renamed into place, so a crash (including
   the injected [db.save.crash]) at any point leaves the previous
   committed snapshot untouched. *)

let snapshot_magic = "PASCALRDB2"

let put_vtype buf (ty : Vtype.t) =
  match ty with
  | Vtype.TInt { lo; hi } ->
    Buffer.add_char buf 'J';
    Codec.put_i64 buf lo;
    Codec.put_i64 buf hi
  | Vtype.TStr { width = None } -> Buffer.add_char buf 'S'
  | Vtype.TStr { width = Some w } ->
    Buffer.add_char buf 'W';
    Codec.put_u16 buf w
  | Vtype.TBool -> Buffer.add_char buf 'B'
  | Vtype.TEnum info ->
    Buffer.add_char buf 'E';
    Codec.put_string buf info.Value.enum_name;
    Codec.put_u16 buf (Array.length info.Value.labels);
    Array.iter (Codec.put_string buf) info.Value.labels
  | Vtype.TRef target ->
    Buffer.add_char buf 'R';
    Codec.put_string buf target

let get_vtype c : Vtype.t =
  match Char.chr (Codec.get_u8 c) with
  | 'J' ->
    let lo = Codec.get_i64 c in
    let hi = Codec.get_i64 c in
    Vtype.TInt { lo; hi }
  | 'S' -> Vtype.TStr { width = None }
  | 'W' -> Vtype.TStr { width = Some (Codec.get_u16 c) }
  | 'B' -> Vtype.TBool
  | 'E' ->
    let name = Codec.get_string c in
    let n = Codec.get_u16 c in
    let labels = Array.init n (fun _ -> Codec.get_string c) in
    Vtype.TEnum { Value.enum_name = name; labels }
  | 'R' -> Vtype.TRef (Codec.get_string c)
  | tag -> Errors.corruption "snapshot: unknown domain tag %C" tag

let snapshot_bytes db =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf snapshot_magic;
  let enum_list = enums db in
  Codec.put_u16 buf (List.length enum_list);
  List.iter
    (fun info ->
      Codec.put_string buf info.Value.enum_name;
      Codec.put_u16 buf (Array.length info.Value.labels);
      Array.iter (Codec.put_string buf) info.Value.labels)
    enum_list;
  let rels = relations db in
  Codec.put_u16 buf (List.length rels);
  List.iter
    (fun r ->
      let schema = Relation.schema r in
      Codec.put_string buf (Relation.name r);
      Codec.put_u16 buf (Schema.arity schema);
      List.iteri
        (fun i name ->
          Codec.put_string buf name;
          put_vtype buf (Schema.type_at schema i))
        (Schema.names schema);
      let key = Schema.key_names schema in
      Codec.put_u16 buf (List.length key);
      List.iter (Codec.put_string buf) key;
      Codec.put_i64 buf (Relation.cardinality r);
      List.iter
        (fun t ->
          let record = Codec.encode_tuple schema t in
          Codec.put_u16 buf (Bytes.length record);
          Buffer.add_bytes buf record)
        (Relation.to_list r))
    rels;
  let indexes = permanent_index_list db in
  Codec.put_u16 buf (List.length indexes);
  List.iter
    (fun (rel, on) ->
      Codec.put_string buf rel;
      Codec.put_string buf on)
    indexes;
  let secondaries =
    List.concat_map
      (fun r ->
        List.map (fun i -> (Relation.name r, i)) (secondary_indexes db (Relation.name r)))
      rels
    |> List.sort (fun (ra, a) (rb, b) ->
           compare
             (ra, Secondary_index.on a, Secondary_index.kind a)
             (rb, Secondary_index.on b, Secondary_index.kind b))
  in
  (* Crash point at the index I/O boundary: serialization aborts before
     any byte of the snapshot reaches disk, so the committed file is
     untouched. *)
  if secondaries <> [] && Failpoint.should_fire "index.save.crash" then begin
    Obs.Metrics.incr "index.save_crashes";
    Errors.io_error "index.save.crash: crash while serializing indexes"
  end;
  Codec.put_u16 buf (List.length secondaries);
  List.iter
    (fun (rel_name, idx) ->
      let schema = Relation.schema (find_relation db rel_name) in
      let section = Buffer.create 256 in
      Codec.put_string section rel_name;
      Buffer.add_char section
        (match Secondary_index.kind idx with
        | Secondary_index.Hash -> 'H'
        | Secondary_index.Sorted -> 'S');
      let on = Secondary_index.on idx in
      Codec.put_u16 section (List.length on);
      List.iter (Codec.put_string section) on;
      let tuples = Secondary_index.to_list idx in
      Codec.put_i64 section (List.length tuples);
      List.iter
        (fun t ->
          let record = Codec.encode_tuple schema t in
          Codec.put_u16 section (Bytes.length record);
          Buffer.add_bytes section record)
        tuples;
      let page = Buffer.to_bytes section in
      Buffer.add_bytes buf page;
      let sum = Codec.adler32 page ~pos:0 ~len:(Bytes.length page) in
      for i = 0 to 3 do
        Buffer.add_char buf (Char.chr ((sum lsr (8 * i)) land 0xFF))
      done)
    secondaries;
  let body = Buffer.to_bytes buf in
  let sum = Codec.adler32 body ~pos:0 ~len:(Bytes.length body) in
  let tail = Buffer.create 4 in
  for i = 0 to 3 do
    Buffer.add_char tail (Char.chr ((sum lsr (8 * i)) land 0xFF))
  done;
  Bytes.cat body (Buffer.to_bytes tail)

let write_file_fsync path data len =
  let oc = open_out_bin path in
  (try
     output_bytes oc (Bytes.sub data 0 len);
     flush oc;
     Unix.fsync (Unix.descr_of_out_channel oc)
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc

let save db ~path =
  let data = snapshot_bytes db in
  let tmp = path ^ ".tmp" in
  (* Crash point 1: mid-write of the temp file — half the snapshot
     lands, the committed file is never touched. *)
  if Failpoint.should_fire "db.save.crash" then begin
    write_file_fsync tmp data (Bytes.length data / 2);
    Obs.Metrics.incr "db.save_crashes";
    Errors.io_error "db.save.crash: crash while writing %s" tmp
  end;
  write_file_fsync tmp data (Bytes.length data);
  (* Crash point 2: temp fully written and durable, but never renamed
     into place; the committed file still wins. *)
  if Failpoint.should_fire "db.save.crash" then begin
    Obs.Metrics.incr "db.save_crashes";
    Errors.io_error "db.save.crash: crash before renaming %s" tmp
  end;
  Unix.rename tmp path;
  Obs.Metrics.incr "db.saves"

let load ~path =
  let data =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let b = Bytes.create n in
    really_input ic b 0 n;
    close_in ic;
    b
  in
  let n = Bytes.length data in
  let magic_len = String.length snapshot_magic in
  if n < magic_len + 4 then
    Errors.corruption "snapshot %s: too short (%d bytes)" path n;
  if not (String.equal (Bytes.sub_string data 0 magic_len) snapshot_magic) then
    Errors.corruption "snapshot %s: bad magic" path;
  let stored =
    let b = ref 0 in
    for i = 3 downto 0 do
      b := (!b lsl 8) lor Char.code (Bytes.get data (n - 4 + i))
    done;
    !b
  in
  let computed = Codec.adler32 data ~pos:0 ~len:(n - 4) in
  if stored <> computed then
    Errors.corruption "snapshot %s: checksum mismatch (stored %x, computed %x)"
      path stored computed;
  let c = Codec.cursor (Bytes.sub data 0 (n - 4)) in
  c.Codec.pos <- magic_len;
  let db = create () in
  let n_enums = Codec.get_u16 c in
  for _ = 1 to n_enums do
    let name = Codec.get_string c in
    let k = Codec.get_u16 c in
    let labels = Array.init k (fun _ -> Codec.get_string c) in
    ignore (declare_enum db name labels)
  done;
  let n_rels = Codec.get_u16 c in
  for _ = 1 to n_rels do
    let name = Codec.get_string c in
    let arity = Codec.get_u16 c in
    let attrs =
      List.init arity (fun _ ->
          let aname = Codec.get_string c in
          let ty =
            match get_vtype c with
            | Vtype.TEnum info -> (
              (* Share the registered enumeration's info so values
                 compare against the catalogued labels. *)
              match find_enum_opt db info.Value.enum_name with
              | Some shared -> Vtype.TEnum shared
              | None -> Vtype.TEnum info)
            | ty -> ty
          in
          Schema.attr aname ty)
    in
    let n_key = Codec.get_u16 c in
    let key = List.init n_key (fun _ -> Codec.get_string c) in
    let schema = Schema.make attrs ~key in
    let rel = declare_relation db ~name schema in
    let card = Codec.get_i64 c in
    for _ = 1 to card do
      let len = Codec.get_u16 c in
      if c.Codec.pos + len > Bytes.length c.Codec.bytes then
        Errors.corruption "snapshot %s: truncated tuple in %s" path name;
      let record = Bytes.sub c.Codec.bytes c.Codec.pos len in
      c.Codec.pos <- c.Codec.pos + len;
      Relation.insert rel (Codec.decode_tuple schema record)
    done
  done;
  let n_indexes = Codec.get_u16 c in
  for _ = 1 to n_indexes do
    let rel = Codec.get_string c in
    let on = Codec.get_string c in
    ignore (register_index db rel ~on)
  done;
  let n_sec = Codec.get_u16 c in
  for _ = 1 to n_sec do
    let start = c.Codec.pos in
    let rel_name = Codec.get_string c in
    let kind =
      match Char.chr (Codec.get_u8 c) with
      | 'H' -> Secondary_index.Hash
      | 'S' -> Secondary_index.Sorted
      | tag -> Errors.corruption "snapshot %s: unknown index kind %C" path tag
    in
    let n_on = Codec.get_u16 c in
    let on = List.init n_on (fun _ -> Codec.get_string c) in
    let rel = find_relation db rel_name in
    let schema = Relation.schema rel in
    let card = Codec.get_i64 c in
    let tuples = ref [] in
    for _ = 1 to card do
      let len = Codec.get_u16 c in
      if c.Codec.pos + len > Bytes.length c.Codec.bytes then
        Errors.corruption "snapshot %s: truncated index page for %s" path
          rel_name;
      let record = Bytes.sub c.Codec.bytes c.Codec.pos len in
      c.Codec.pos <- c.Codec.pos + len;
      tuples := Codec.decode_tuple schema record :: !tuples
    done;
    let computed =
      Codec.adler32 c.Codec.bytes ~pos:start ~len:(c.Codec.pos - start)
    in
    let stored =
      let b = ref 0 in
      for _ = 1 to 4 do
        b := (!b lsr 8) lor (Codec.get_u8 c lsl 24)
      done;
      !b
    in
    (* A damaged index page never fails the load: the relation content
       above already passed the snapshot checksum, so the index is
       rebuilt from it and the recovery counted. *)
    let damaged =
      stored <> computed || Failpoint.should_fire "index.load.corrupt"
    in
    let idx =
      if damaged then begin
        Obs.Metrics.incr "index.recovery_rebuilds";
        Secondary_index.build ~kind rel ~on
      end
      else Secondary_index.of_tuples ~kind rel ~on (List.rev !tuples)
    in
    hook_index rel idx;
    install_secondary db idx
  done;
  if c.Codec.pos <> Bytes.length c.Codec.bytes then
    Errors.corruption "snapshot %s: %d trailing bytes" path
      (Bytes.length c.Codec.bytes - c.Codec.pos);
  db

(* ------------------------------------------------------------------ *)
(* Snapshot-isolated transactions.

   MVCC at relation granularity, riding the same versions the plan
   cache's stats epoch already sums.  A transaction pins a *snapshot* —
   a facade database sharing the committed Relation.t handles — under
   the store lock, so it sees every relation at one commit point and
   none of the installs that happen while it runs.  A write transaction
   never touches a committed state: its first write to a relation takes
   a private [Relation.copy] (continuing the original's version lineage
   so epochs stay monotone), and commit *installs* the copies by
   swapping the handles in the store's catalog.

   Conflicts are first-committer-wins: commit re-checks, under the
   store lock, that every written relation still has the commit
   sequence the snapshot saw.  Because durability (the WAL fsync) runs
   outside the lock so that concurrent commits can share fsyncs, a
   passed check is protected by a *reservation* on the written
   relations; a competing writer aborts on the reservation instead of
   sneaking through the fsync window.

   Durability: [attach_wal] snapshots the database with [save], opens a
   WAL beside it and freezes the committed states; from then on commit
   appends the transaction's operations to the WAL (group commit)
   before installing.  [open_durable] is crash recovery — load the
   snapshot, replay the WAL's intact records, checkpoint.  Replay is
   idempotent (inserts are upserts) because a crash between the
   checkpoint's snapshot save and its WAL truncation replays a log
   whose prefix is already in the snapshot. *)

module Txn = struct
  type kind = Read | Write
  type state = Open | Committed | Aborted

  type nonrec t = {
    store : t;
    view_db : t;
    kind : kind;
    id : int;
    read_seqs : (string, int) Hashtbl.t;  (* last_commit at pin time *)
    touched : (string, Relation.t) Hashtbl.t;  (* private copies *)
    touched_idx : (string, Secondary_index.t list) Hashtbl.t;
        (* private secondary-index copies, pinned with the relation
           copy at first write and installed together at commit *)
    mutable ops : Wal.op list;  (* reversed write set *)
    mutable state : state;
  }

  (* Pin a snapshot: copy the catalog's handle tables under the store
     lock, so the view is one commit point even while writers install.
     Committed Relation.t states are never mutated in place, so sharing
     the handles is safe; the view's own mvcc state is fresh and inert. *)
  let begin_txn kind store =
    let m = store.mvcc in
    Mutex.lock m.mu;
    let view_db =
      {
        rels = Hashtbl.copy store.rels;
        enums = Hashtbl.copy store.enums;
        perm_indexes = Hashtbl.copy store.perm_indexes;
        sec_indexes = Hashtbl.copy store.sec_indexes;
        catalog_version = store.catalog_version;
        mvcc = fresh_mvcc ();
      }
    in
    let read_seqs = Hashtbl.copy m.last_commit in
    let id = m.next_txn in
    m.next_txn <- id + 1;
    Mutex.unlock m.mu;
    Obs.Metrics.incr
      (match kind with
      | Read -> "txn.begin_read"
      | Write -> "txn.begin_write");
    {
      store;
      view_db;
      kind;
      id;
      read_seqs;
      touched = Hashtbl.create 4;
      touched_idx = Hashtbl.create 4;
      ops = [];
      state = Open;
    }

  let view txn = txn.view_db
  let kind txn = txn.kind
  let state txn = txn.state

  let writable txn op =
    (match txn.state with
    | Open -> ()
    | Committed | Aborted -> invalid_arg ("Txn." ^ op ^ ": transaction is closed"));
    match txn.kind with
    | Write -> ()
    | Read -> invalid_arg ("Txn." ^ op ^ ": read-only transaction")

  (* Copy-on-first-write: swap a private copy into the view so the
     transaction reads its own writes through the normal executors.
     Secondary indexes ride along — each gets a private {!
     Secondary_index.copy} (sharing bucket spines with the committed
     state) hooked to the relation copy, so the transaction's writes
     maintain its own indexes incrementally while the committed ones
     stay pinned for concurrent snapshot readers. *)
  let touch txn name =
    match Hashtbl.find_opt txn.touched name with
    | Some c -> c
    | None ->
      let orig = find_relation txn.view_db name in
      let c = Relation.copy orig in
      Relation.set_version c (Relation.version orig);
      Hashtbl.replace txn.touched name c;
      Hashtbl.replace txn.view_db.rels name c;
      (match secondary_indexes txn.view_db name with
      | [] -> ()
      | idxs ->
        let copies = List.map Secondary_index.copy idxs in
        List.iter (hook_index c) copies;
        Hashtbl.replace txn.touched_idx name copies;
        Hashtbl.replace txn.view_db.sec_indexes name copies);
      c

  let insert txn name tup =
    writable txn "insert";
    let c = touch txn name in
    Relation.insert c tup;
    txn.ops <- Wal.Insert (name, Codec.encode_tuple (Relation.schema c) tup) :: txn.ops

  let delete_key txn name key =
    writable txn "delete_key";
    let c = touch txn name in
    Relation.delete_key c key;
    txn.ops <- Wal.Delete (name, key) :: txn.ops

  let clear txn name =
    writable txn "clear";
    let c = touch txn name in
    Relation.clear c;
    txn.ops <- Wal.Clear name :: txn.ops

  let read_seq txn name =
    match Hashtbl.find_opt txn.read_seqs name with Some s -> s | None -> 0

  (* First-committer-wins, called with the store lock held: a written
     relation whose committed sequence moved past our snapshot — or one
     reserved by a commit in its fsync window — loses. *)
  let conflicting m txn =
    Hashtbl.fold
      (fun name _ acc ->
        match acc with
        | Some _ -> acc
        | None ->
          let committed =
            match Hashtbl.find_opt m.last_commit name with
            | Some s -> s
            | None -> 0
          in
          if committed <> read_seq txn name then Some name
          else (
            match Hashtbl.find_opt m.reserved name with
            | Some id when id <> txn.id -> Some name
            | Some _ | None -> None))
      txn.touched None

  let unreserve m txn =
    Hashtbl.iter (fun name _ -> Hashtbl.remove m.reserved name) txn.touched;
    Condition.broadcast m.cond

  let abort txn =
    match txn.state with
    | Open ->
      txn.state <- Aborted;
      if txn.kind = Write then Obs.Metrics.incr "txn.aborts"
    | Committed | Aborted -> ()

  let commit txn =
    (match txn.state with
    | Open -> ()
    | Committed -> invalid_arg "Txn.commit: already committed"
    | Aborted -> invalid_arg "Txn.commit: already aborted");
    if txn.kind = Read || Hashtbl.length txn.touched = 0 then
      txn.state <- Committed
    else begin
      let m = txn.store.mvcc in
      Mutex.lock m.mu;
      while m.checkpointing do
        Condition.wait m.cond m.mu
      done;
      if m.durable && m.wal = None then begin
        Mutex.unlock m.mu;
        abort txn;
        Errors.io_error "Txn.commit: database is closed"
      end;
      (match conflicting m txn with
      | Some name ->
        Mutex.unlock m.mu;
        txn.state <- Aborted;
        Obs.Metrics.incr "txn.conflicts";
        Obs.Metrics.incr "txn.aborts";
        Errors.txn_conflict
          "relation %s was committed by a concurrent transaction" name
      | None -> ());
      Hashtbl.iter
        (fun name _ -> Hashtbl.replace m.reserved name txn.id)
        txn.touched;
      let wal = m.wal in
      Mutex.unlock m.mu;
      (* Durability outside the store lock: concurrent commits batch
         into shared fsyncs (group commit). *)
      (match wal with
      | Some w -> (
        try Wal.commit w (List.rev txn.ops)
        with e ->
          Mutex.lock m.mu;
          unreserve m txn;
          Mutex.unlock m.mu;
          txn.state <- Aborted;
          Obs.Metrics.incr "txn.aborts";
          raise e)
      | None -> ());
      Mutex.lock m.mu;
      m.commit_seq <- m.commit_seq + 1;
      Hashtbl.iter
        (fun name c ->
          if m.durable then Relation.freeze c;
          Hashtbl.replace txn.store.rels name c;
          (* The index copies install with their relation: they were
             maintained through every write of this transaction, so no
             rebuild is needed; pinned readers keep the old pair. *)
          (match Hashtbl.find_opt txn.touched_idx name with
          | Some idxs -> Hashtbl.replace txn.store.sec_indexes name idxs
          | None -> ());
          Hashtbl.replace m.last_commit name m.commit_seq)
        txn.touched;
      (* Refresh permanent indexes over the installed states; pinned
         readers keep the index values they snapshotted, consistent
         with their old relation handles. *)
      let stale =
        Hashtbl.fold
          (fun (rn, on) _ acc ->
            if Hashtbl.mem txn.touched rn then (rn, on) :: acc else acc)
          txn.store.perm_indexes []
      in
      List.iter
        (fun (rn, on) ->
          Hashtbl.replace txn.store.perm_indexes (rn, on)
            (Index.build (Hashtbl.find txn.touched rn) ~on:[ on ]))
        stale;
      unreserve m txn;
      Mutex.unlock m.mu;
      txn.state <- Committed;
      Obs.Metrics.incr "txn.commits"
    end
end

let begin_read db = Txn.begin_txn Txn.Read db
let begin_write db = Txn.begin_txn Txn.Write db

let with_txn begin_kind db f =
  let txn = begin_kind db in
  match f txn with
  | v ->
    if Txn.state txn = Txn.Open then Txn.commit txn;
    v
  | exception e ->
    Txn.abort txn;
    raise e

let with_read db f = with_txn begin_read db f
let with_write db f = with_txn begin_write db f

(* ------------------------------------------------------------------ *)
(* Durability: WAL attach, recovery, checkpoint. *)

let wal_path path = path ^ ".wal"
let wal_attached db = db.mvcc.wal <> None
let durable db = db.mvcc.durable

(* Replay application is an upsert: a crash between a checkpoint's
   snapshot save and its WAL truncation leaves a log whose prefix is
   already inside the snapshot, so replaying the whole log must
   converge rather than trip the key constraint. *)
let apply_op db = function
  | Wal.Insert (name, bytes) ->
    let rel = find_relation db name in
    let schema = Relation.schema rel in
    let tup = Codec.decode_tuple schema bytes in
    let key = Tuple.key_of schema tup in
    (match Relation.find_key rel key with
    | Some existing when Tuple.equal existing tup -> ()
    | Some _ ->
      Relation.delete_key rel key;
      Relation.insert rel tup
    | None -> Relation.insert rel tup)
  | Wal.Delete (name, key) -> Relation.delete_key (find_relation db name) key
  | Wal.Clear name -> Relation.clear (find_relation db name)

let make_durable db ~path w =
  let m = db.mvcc in
  Mutex.lock m.mu;
  m.wal <- Some w;
  m.snapshot_path <- Some path;
  m.durable <- true;
  Mutex.unlock m.mu;
  Hashtbl.iter (fun _ r -> Relation.freeze r) db.rels

let attach_wal db ~path =
  if wal_attached db then
    Errors.io_error "attach_wal: %s already has a wal attached" path;
  save db ~path;
  make_durable db ~path (Wal.create (wal_path path))

let open_durable ~path =
  let db = load ~path in
  let replayed =
    Wal.replay (wal_path path) ~apply:(fun ops -> List.iter (apply_op db) ops)
  in
  if replayed > 0 then begin
    refresh_indexes db;
    (* Replay mutations already maintained the secondary indexes
       through the observers [load] attached; verify and rebuild any
       index the replay nevertheless left inconsistent. *)
    let indexed =
      Hashtbl.fold (fun n idxs acc -> (n, idxs) :: acc) db.sec_indexes []
    in
    List.iter
      (fun (rel_name, idxs) ->
        let rel = find_relation db rel_name in
        if
          List.exists
            (fun i -> not (Secondary_index.consistent_with i rel))
            idxs
        then begin
          let rebuilt =
            List.map
              (fun i ->
                Obs.Metrics.incr "index.recovery_rebuilds";
                Secondary_index.build ~kind:(Secondary_index.kind i) rel
                  ~on:(Secondary_index.on i))
              idxs
          in
          Relation.clear_observers rel;
          List.iter (hook_index rel) rebuilt;
          Hashtbl.replace db.sec_indexes rel_name rebuilt
        end)
      indexed
  end;
  (* Checkpoint the recovered state before going live: the snapshot
     absorbs the replayed transactions and the log restarts empty. *)
  save db ~path;
  make_durable db ~path (Wal.create (wal_path path));
  Obs.Metrics.incr "db.recoveries";
  db

let checkpoint db =
  let m = db.mvcc in
  match m.wal, m.snapshot_path with
  | Some w, Some path ->
    Mutex.lock m.mu;
    (* Block new reservations and wait out in-flight commits: a commit
       past its conflict check but not yet installed must not fall
       between a truncated WAL and a snapshot that missed it. *)
    m.checkpointing <- true;
    while Hashtbl.length m.reserved > 0 do
      Condition.wait m.cond m.mu
    done;
    let finish () =
      m.checkpointing <- false;
      Condition.broadcast m.cond;
      Mutex.unlock m.mu
    in
    (try
       (* Crash point 1: nothing written yet — snapshot and WAL intact. *)
       if Failpoint.should_fire "wal.checkpoint.crash" then begin
         Obs.Metrics.incr "wal.checkpoint_crashes";
         Errors.io_error "wal.checkpoint.crash: before snapshot %s" path
       end;
       save db ~path;
       (* Crash point 2: new snapshot durable, WAL not yet truncated —
          recovery replays a log whose effects the snapshot already
          holds, which upsert replay absorbs. *)
       if Failpoint.should_fire "wal.checkpoint.crash" then begin
         Obs.Metrics.incr "wal.checkpoint_crashes";
         Errors.io_error "wal.checkpoint.crash: before truncating %s"
           (Wal.path w)
       end;
       Wal.truncate w;
       Obs.Metrics.incr "db.checkpoints"
     with e ->
       finish ();
       raise e);
    finish ()
  | _ -> Errors.io_error "checkpoint: no wal attached"

let close db =
  match db.mvcc.wal with
  | None -> ()
  | Some w ->
    checkpoint db;
    Wal.close w;
    db.mvcc.wal <- None
