(* A database is a catalog of named relations plus the registry of the
   enumeration types their schemas mention (Figure 1's TYPE section). *)

type t = {
  rels : (string, Relation.t) Hashtbl.t;
  enums : (string, Value.enum_info) Hashtbl.t;
  perm_indexes : (string * string, Index.t) Hashtbl.t;
      (* permanent indexes, keyed by (relation, component) — paper
         Section 3.2: "The first step can be omitted, if permanent
         indexes exist", maintained as in Example 3.1 *)
}

let create () =
  {
    rels = Hashtbl.create 16;
    enums = Hashtbl.create 16;
    perm_indexes = Hashtbl.create 8;
  }

let add_relation db r =
  let n = Relation.name r in
  if String.equal n "" then
    Errors.schema_error "cannot catalog an anonymous relation"
  else if Hashtbl.mem db.rels n then
    Errors.schema_error "relation %s already declared" n
  else Hashtbl.replace db.rels n r

let declare_relation db ~name schema =
  let r = Relation.create ~name schema in
  add_relation db r;
  r

let find_relation db name =
  match Hashtbl.find_opt db.rels name with
  | Some r -> r
  | None -> raise (Errors.Unknown_relation name)

let find_relation_opt db name = Hashtbl.find_opt db.rels name
let mem_relation db name = Hashtbl.mem db.rels name

let relation_names db =
  List.sort String.compare (Hashtbl.fold (fun n _ acc -> n :: acc) db.rels [])

let relations db = List.map (find_relation db) (relation_names db)

let declare_enum db name labels =
  if Hashtbl.mem db.enums name then
    Errors.schema_error "enumeration %s already declared" name
  else begin
    let info = { Value.enum_name = name; labels } in
    Hashtbl.replace db.enums name info;
    info
  end

let find_enum db name =
  match Hashtbl.find_opt db.enums name with
  | Some info -> info
  | None -> Errors.schema_error "unknown enumeration %s" name

let find_enum_opt db name = Hashtbl.find_opt db.enums name

let enums db =
  Hashtbl.fold (fun _ info acc -> info :: acc) db.enums []
  |> List.sort (fun a b ->
         String.compare a.Value.enum_name b.Value.enum_name)

(* Permanent indexes (Example 3.1's enrindex).  Registration builds the
   index with one counted scan; after updates to the base relation the
   index must be refreshed, as the paper's example maintains its index
   by hand alongside each insertion. *)
let register_index db rel_name ~on =
  let rel = find_relation db rel_name in
  let idx = Index.build rel ~on:[ on ] in
  Hashtbl.replace db.perm_indexes (rel_name, on) idx;
  idx

let permanent_index db rel_name ~on =
  Hashtbl.find_opt db.perm_indexes (rel_name, on)

let refresh_indexes db =
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) db.perm_indexes [] in
  List.iter (fun (rel, on) -> ignore (register_index db rel ~on)) keys

let permanent_index_list db =
  List.sort compare
    (Hashtbl.fold (fun (r, a) _ acc -> (r, a) :: acc) db.perm_indexes [])

(* Dereference: regain the selected variable from a reference value
   (paper Section 3.1, the postfix @ operator). *)
let deref db (r : Value.reference) =
  Relation.find_key_exn (find_relation db r.Value.target) r.Value.key

let deref_value db = function
  | Value.VRef r -> deref db r
  | v -> Errors.type_error "cannot dereference non-reference %s" (Value.to_string v)

(* Attach paged storage to every catalogued relation, sharing one
   buffer pool; returns the pool for statistics. *)
let attach_storage db ~pool_pages =
  let pool = Buffer_pool.create ~capacity:pool_pages in
  Hashtbl.iter (fun _ r -> Relation.attach_storage r ~pool) db.rels;
  pool

(* One call resets *all* measurement state — relation scan/probe
   counters, permanent-index probe counters, and the stats of every
   attached buffer pool — so benchmark iterations and [analyze] runs
   never leak counts into each other.  Pools may be shared between
   relations; resetting a shared pool more than once is harmless. *)
let reset_counters db =
  Hashtbl.iter
    (fun _ r ->
      Relation.reset_counters r;
      match Relation.buffer_pool r with
      | Some pool -> Buffer_pool.reset_stats pool
      | None -> ())
    db.rels;
  Hashtbl.iter (fun _ idx -> Index.reset_counters idx) db.perm_indexes

let total_probes db =
  Hashtbl.fold (fun _ r acc -> acc + Relation.probe_count r) db.rels 0

let pool_stats db =
  (* The combined stats of the distinct pools attached to this
     database's relations (normally one shared pool). *)
  let pools =
    Hashtbl.fold
      (fun _ r acc ->
        match Relation.buffer_pool r with
        | Some p when not (List.memq p acc) -> p :: acc
        | Some _ | None -> acc)
      db.rels []
  in
  match pools with
  | [] -> None
  | _ ->
    let acc =
      {
        Buffer_pool.fetches = 0;
        misses = 0;
        evictions = 0;
        invalidations = 0;
      }
    in
    List.iter
      (fun p ->
        let s = Buffer_pool.stats p in
        acc.Buffer_pool.fetches <- acc.Buffer_pool.fetches + s.Buffer_pool.fetches;
        acc.Buffer_pool.misses <- acc.Buffer_pool.misses + s.Buffer_pool.misses;
        acc.Buffer_pool.evictions <-
          acc.Buffer_pool.evictions + s.Buffer_pool.evictions;
        acc.Buffer_pool.invalidations <-
          acc.Buffer_pool.invalidations + s.Buffer_pool.invalidations)
      pools;
    Some acc

let total_scans db =
  Hashtbl.fold (fun _ r acc -> acc + Relation.scan_count r) db.rels 0

let pp ppf db =
  Fmt.pf ppf "@[<v>%a@]"
    (Fmt.list ~sep:Fmt.cut Relation.pp)
    (relations db)
