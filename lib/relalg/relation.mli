(** Keyed mutable relations (the PASCAL/R [RELATION] type).

    Elements are tuples; the schema's key functionally determines the
    element.  [rel[keyval]] selected-variable access is {!find_key};
    the instrumented {!scan} models the one-element-at-a-time reads of
    the paper's FOR EACH loops and feeds the strategy-1 scan-count
    experiments. *)

type t

type event = Inserted of Tuple.t | Deleted of Tuple.t | Cleared
(** Content-change events, fired on every {e effective} mutation (an
    idempotent re-insert or a miss delete fires nothing).  The database
    layer maintains secondary indexes through these. *)

val create : ?name:string -> ?size_hint:int -> Schema.t -> t
(** [size_hint] presizes the key table for operators that know their
    output bound; capacity only, never semantics. *)

val name : t -> string
val schema : t -> Schema.t
val cardinality : t -> int
val is_empty : t -> bool

val insert : t -> Tuple.t -> unit
(** PASCAL/R [:+].  Idempotent on identical elements.
    @raise Errors.Duplicate_key if the key is bound to a different element.
    @raise Errors.Type_error if the tuple does not fit the schema.
    @raise Errors.Frozen if the relation is frozen (all mutators do). *)

val insert_unchecked : t -> Tuple.t -> unit
(** Fast-path insertion for operator outputs whose tuples are well typed
    by construction; skips the domain check.  For whole-tuple-key
    intermediates only: duplicate keys silently keep the first element. *)

val insert_list : t -> Tuple.t list -> unit
val delete_key : t -> Value.t list -> unit
val clear : t -> unit

val find_key : t -> Value.t list -> Tuple.t option
(** Selected variable [rel[keyval]]. *)

val find_key_exn : t -> Value.t list -> Tuple.t
(** @raise Errors.Dangling_reference if absent. *)

val mem_key : t -> Value.t list -> bool
val mem_tuple : t -> Tuple.t -> bool

val iter : (Tuple.t -> unit) -> t -> unit
(** Administrative iteration; not counted as a scan. *)

val fold : ('a -> Tuple.t -> 'a) -> 'a -> t -> 'a

val scan : (Tuple.t -> unit) -> t -> unit
(** Instrumented full scan (counts towards {!scan_count}). *)

val scan_fold : ('a -> Tuple.t -> 'a) -> 'a -> t -> 'a
val exists : (Tuple.t -> bool) -> t -> bool
val for_all : (Tuple.t -> bool) -> t -> bool

val to_array : t -> Tuple.t array
(** Snapshot of the contents in {!scan} order, counted as one scan —
    the immutable view parallel execution hands to worker domains
    ({!t} itself is not thread-safe).  Scan counters therefore match
    the serial engine, which also reads the relation exactly once. *)

val to_array_uncounted : t -> Tuple.t array
(** {!to_array} through the uninstrumented {!iter} — for parallelizing
    call sites whose serial form also reads via {!iter}. *)

val attach_storage : t -> pool:Buffer_pool.t -> unit
(** Attach paged storage: contents are written to a fresh heap file and
    every subsequent {!scan} decodes the pages through [pool], whose
    miss count is the simulated disk I/O of the 1982 cost model.
    Insertions append; deletions mark the file for rebuild. *)

val detach_storage : t -> unit

val buffer_pool : t -> Buffer_pool.t option
(** The pool the relation's paged storage reads through, if attached. *)

val backing_pages : t -> int option
(** Number of heap-file pages, when paged storage is attached. *)

val scan_count : t -> int
val probe_count : t -> int
val reset_counters : t -> unit

val version : t -> int
(** Content version: bumped on every effective insertion, deletion and
    clear.  Feeds {!Database.stats_epoch}, which invalidates cached
    plans whose cardinality assumptions the change may break. *)

val set_version : t -> int -> unit
(** MVCC lineage continuation: start a write transaction's private
    {!copy} at the version of the state it was copied from, keeping the
    stats epoch strictly monotone across installs.  Internal to
    {!Database}'s transaction layer. *)

val freeze : t -> unit
(** Mark this relation state immutable: every subsequent content
    mutation raises {!Errors.Frozen}.  Applied to the committed states
    of a durable (WAL-attached) database, whose snapshot readers may be
    iterating them concurrently; scan/probe counters still move.
    Irreversible; {!copy} of a frozen relation is unfrozen. *)

val frozen : t -> bool

val add_observer : t -> (event -> unit) -> unit
(** Register a mutation observer.  Observers are not carried by
    {!copy}: a transaction's private copy starts unobserved. *)

val clear_observers : t -> unit

val to_list : t -> Tuple.t list
(** Sorted, for deterministic output. *)

val of_list : ?name:string -> Schema.t -> Tuple.t list -> t
val copy : ?name:string -> t -> t

val equal_set : t -> t -> bool
(** Set equality of the element sets. *)

val subset : t -> t -> bool
val pp : t Fmt.t
