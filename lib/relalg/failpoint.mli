(** Failpoint fault injection.

    Named sites at the storage layer's I/O boundaries ([standard_sites])
    consult this registry on every hit; tests and the CLI arm a site
    with a deterministic trigger and the instrumented code simulates the
    corresponding fault.  When no site is armed the check is a single
    integer compare, so instrumentation costs nothing measurable. *)

type trigger =
  | Nth of int  (** fire on exactly the Nth consultation (1-based), once *)
  | Every of int  (** fire on every Kth consultation *)
  | Seeded of { seed : int; prob : float }
      (** per-consultation Bernoulli driven by a private splitmix64
          stream, so a given seed reproduces the same fault schedule *)

val trigger_to_string : trigger -> string

val trigger_of_string : string -> trigger
(** Parse ["nth:N"], ["every:K"] or ["prob:P:SEED"] (seed optional).
    @raise Invalid_argument on malformed specs. *)

val standard_sites : string list
(** The catalogue of instrumented sites: [heap.write.partial],
    [heap.read.short], [pool.evict.io], [codec.decode.corrupt],
    [db.save.crash], [wal.append.crash], [wal.fsync.crash],
    [wal.checkpoint.crash]. *)

val arm : string -> trigger -> unit
(** Arm a site (re-arming resets its hit count and PRNG stream). *)

val arm_spec : string -> unit
(** Arm from CLI syntax ["SITE=TRIGGER"], e.g.
    ["heap.read.short=nth:2"].  @raise Invalid_argument. *)

val disarm : string -> unit
val disarm_all : unit -> unit
val any_armed : unit -> bool
val armed : string -> trigger option
val armed_sites : unit -> (string * trigger) list

val should_fire : string -> bool
(** Consult the site: count the hit and decide whether the fault fires.
    Fired sites increment the [failpoint.fired] and
    [failpoint.fired.<site>] metrics. *)

val hit_count : string -> int
val fire_count : string -> int
