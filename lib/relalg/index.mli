(** Indexes associating component values with references (paper Section
    3.2, Figure 2).  Built by a counted scan; optionally partial. *)

type t

val create : Relation.t -> on:string list -> t
(** An empty index on the given components (for incremental builds while
    another computation scans the relation — strategy 1). *)

val add : t -> Relation.t -> Tuple.t -> unit
(** Index one element (the element must belong to the relation). *)

val build : ?filter:(Tuple.t -> bool) -> Relation.t -> on:string list -> t
(** Build by scanning; [filter] makes the index partial. *)

val source : t -> string
val on : t -> string list
val entry_count : t -> int
val distinct_keys : t -> int

val probe_count : t -> int
(** Lookups and comparison walks served by this index. *)

val reset_counters : t -> unit

val lookup : t -> Value.t list -> Value.reference list
val lookup1 : t -> Value.t -> Value.reference list
val mem : t -> Value.t list -> bool

val fold_entries :
  ('a -> Value.t list -> Value.reference list -> 'a) -> 'a -> t -> 'a

val iter_entries : (Value.t list -> Value.reference list -> unit) -> t -> unit

val fold_matching :
  t ->
  Value.comparison ->
  Value.t ->
  ('a -> Value.reference -> 'a) ->
  'a ->
  'a
(** [fold_matching t op probe f init] folds over references whose indexed
    value [v] satisfies [v op probe].  Constant-time for [Eq], a walk of
    the distinct values otherwise.
    @raise Errors.Type_error for comparison probes on multi-component
    indexes. *)

val fold_matching_entries :
  t ->
  Value.comparison ->
  Value.t ->
  ('a -> int option -> Value.reference list -> 'a) ->
  'a ->
  'a
(** As {!fold_matching}, but folding whole matching entries tagged with
    a stable entry ordinal — the entry's position in {!fold_entries}
    enumeration order over the unmodified index.  [Eq] probes find
    their bucket by lookup rather than a walk and report [None].
    Probe counting is identical to {!fold_matching}. *)

val exists_matching : t -> Value.comparison -> Value.t -> bool
(** Existence version of {!fold_matching}, with early exit. *)

val to_relation : ?name:string -> t -> Schema.t -> Relation.t
(** Materialize as the Figure-2 style relation [<components..., ref>];
    the second argument is the source relation's schema. *)
