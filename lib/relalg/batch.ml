(* Column-major tuple batches for the vectorized stream kernels.

   A batch holds a few thousand rows of one schema as column arrays:
   integer and boolean components are unboxed ([int array] / one byte
   per row in [Bytes]), everything else — strings, enums, references —
   is interned into a chain-scoped {!pool} and stored as [int array] of
   pool ids.  Interning pays each value's structural hash (deep for the
   nested-key references the combination phase traffics in) exactly once
   per distinct value per chain; every downstream kernel — selection,
   projection, duplicate elimination, hash join build/probe — then works
   on machine integers.

   Equality is preserved by construction: interning is injective with
   respect to {!Value.equal}, so two rows are {!Tuple.equal} iff their
   encoded integer rows are component-wise equal (integer columns store
   the value itself, boolean columns the 0/1 byte, interned columns the
   pool id).  That makes integer-row comparison a sound implementation
   of tuple comparison inside one pool — the invariant the batched
   kernels rest on.

   A batch also carries an optional selection vector: the ascending live
   row indices.  Filters refine the vector instead of compacting the
   columns, and projections share the column arrays outright; only the
   row-multiplying operators (join, product) gather into fresh dense
   columns. *)

module Vtbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

type col = C_int of int array | C_bool of Bytes.t | C_obj of int array

(* One encoded relation, kept in the pool's cache: all columns in the
   relation's (uninstrumented) iteration order. *)
type encoded = { e_cols : col array; e_rows : int }

type pool = {
  mutable vals : Value.t array;  (* id -> the interned value *)
  mutable n : int;
  ids : int Vtbl.t;              (* value -> id *)
  mutable cache : (Relation.t * int * encoded) list;
      (* per-relation encodes, keyed by physical identity + version *)
  mutable ucache : (Relation.t * int * encoded) list;
      (* encodes registered by the batched materializer in INSERTION
         order — the same row set as [cache] would hold but not
         necessarily the relation's iteration order; only
         order-insensitive consumers may look here *)
}

type t = {
  cols : col array;
  nrows : int;                (* physical length of every column *)
  sel : int array option;     (* ascending live row indices; None = all *)
  pool : pool;
}

(* Raised when a value does not fit its column's declared class (a
   non-integer in a TInt column, say).  Tuples written through the
   checked insertion path can never trigger it; the stream kernels treat
   it as "this chain is not batchable" and fall back to the scalar
   emit. *)
exception Unbatchable

let create_pool () =
  {
    vals = Array.make 64 (Value.VInt 0);
    n = 0;
    ids = Vtbl.create 256;
    cache = [];
    ucache = [];
  }

let intern pool v =
  match Vtbl.find_opt pool.ids v with
  | Some id -> id
  | None ->
    let id = pool.n in
    if id = Array.length pool.vals then begin
      let bigger = Array.make (2 * id) (Value.VInt 0) in
      Array.blit pool.vals 0 bigger 0 id;
      pool.vals <- bigger
    end;
    pool.vals.(id) <- v;
    pool.n <- id + 1;
    Vtbl.replace pool.ids v id;
    id

let value pool id = pool.vals.(id)

(* Column class per attribute domain.  Integer-like and boolean domains
   get unboxed columns; everything else goes through the pool.  Enums
   could store their ordinal, but interning returns the physically
   original value — no reconstruction subtleties — and enum columns are
   tiny-cardinality anyway. *)
type cls = K_int | K_bool | K_obj

let cls_of_type = function
  | Vtype.TInt _ -> K_int
  | Vtype.TBool -> K_bool
  | Vtype.TStr _ | Vtype.TEnum _ | Vtype.TRef _ -> K_obj

(* --- Encoding ------------------------------------------------------- *)

let encode_rows pool schema rows nrows =
  let arity = Schema.arity schema in
  let cols =
    Array.init arity (fun c ->
        match cls_of_type (Schema.type_at schema c) with
        | K_int ->
          let a = Array.make nrows 0 in
          List.iteri
            (fun r (t : Tuple.t) ->
              match t.(c) with
              | Value.VInt n -> a.(r) <- n
              | _ -> raise Unbatchable)
            rows;
          C_int a
        | K_bool ->
          let b = Bytes.make nrows '\000' in
          List.iteri
            (fun r (t : Tuple.t) ->
              match t.(c) with
              | Value.VBool x -> if x then Bytes.set b r '\001'
              | _ -> raise Unbatchable)
            rows;
          C_bool b
        | K_obj ->
          let a = Array.make nrows 0 in
          List.iteri (fun r (t : Tuple.t) -> a.(r) <- intern pool t.(c)) rows;
          C_obj a)
  in
  { e_cols = cols; e_rows = nrows }

(* Encode a whole relation (iteration order), memoized in the pool by
   physical identity and content version — base single lists are padded
   into every disjunct of a quantifier cohort, and the cache turns their
   per-disjunct re-encode into one encode per query. *)
let encode_relation pool rel =
  let version = Relation.version rel in
  let rec find = function
    | [] -> None
    | (r, v, enc) :: rest ->
      if r == rel then if v = version then Some enc else None else find rest
  in
  match find pool.cache with
  | Some enc -> enc
  | None ->
    let rows = List.rev (Relation.fold (fun acc t -> t :: acc) [] rel) in
    let enc = encode_rows pool (Relation.schema rel) rows (Relation.cardinality rel) in
    pool.cache <-
      (rel, version, enc) :: List.filter (fun (r, _, _) -> r != rel) pool.cache;
    enc

let encoded_rows enc = enc.e_rows

(* The batched materializer hands over the columns it just decoded and
   inserted, so a later (order-insensitive) pass over the same relation
   skips the re-encode — for a large intermediate that is the single
   biggest cost of the columnar divide. *)
let register_unordered pool rel enc =
  pool.ucache <-
    (rel, Relation.version rel, enc)
    :: List.filter (fun (r, _, _) -> r != rel) pool.ucache

(* Encode for set-semantics consumers only: prefers a registered
   insertion-order encode, else takes (or fills) the iteration-order
   cache.  The row SET always equals the relation's contents; the row
   ORDER may not be the iteration order, so order-sensitive stream
   sources must keep using [encode_relation]. *)
let encode_relation_unordered pool rel =
  let version = Relation.version rel in
  let rec find = function
    | [] -> None
    | (r, v, enc) :: rest ->
      if r == rel then if v = version then Some enc else None else find rest
  in
  match find pool.ucache with
  | Some enc -> enc
  | None -> encode_relation pool rel

(* A zero-copy window onto an encoded relation: columns are shared, the
   selection vector names the window's rows. *)
let of_encoded pool enc ~off ~len =
  {
    cols = enc.e_cols;
    nrows = enc.e_rows;
    sel = (if off = 0 && len = enc.e_rows then None else Some (Array.init len (fun i -> off + i)));
    pool;
  }

(* --- Row access ----------------------------------------------------- *)

let live_count b =
  match b.sel with None -> b.nrows | Some s -> Array.length s

let live_iter f b =
  match b.sel with
  | None ->
    for i = 0 to b.nrows - 1 do
      f i
    done
  | Some s -> Array.iter f s

(* The integer image of one cell: the value itself (int), the 0/1 byte
   (bool) or the pool id (interned).  Comparable across batches of one
   pool when the column classes agree. *)
let cell col row =
  match col with
  | C_int a -> a.(row)
  | C_bool b -> Char.code (Bytes.get b row)
  | C_obj a -> a.(row)

let cell_value pool col row =
  match col with
  | C_int a -> Value.VInt a.(row)
  | C_bool b -> Value.VBool (Bytes.get b row <> '\000')
  | C_obj a -> pool.vals.(a.(row))

(* Decode one row back to a boxed tuple (the per-row adapter at the
   stream boundary).  Interned cells return the physically original
   value, so reference-typed hot paths re-box nothing but the tuple
   array itself. *)
let tuple b row =
  Array.init (Array.length b.cols) (fun c -> cell_value b.pool b.cols.(c) row)

(* --- Kernel building blocks ----------------------------------------- *)

let filter b pred =
  let buf = Array.make (live_count b) 0 in
  let n = ref 0 in
  live_iter
    (fun i ->
      if pred i then begin
        buf.(!n) <- i;
        incr n
      end)
    b;
  { b with sel = Some (Array.sub buf 0 !n) }

let project b positions =
  { b with cols = Array.map (fun c -> b.cols.(c)) positions }

(* Integer key of a row over the named columns — the unit the dedup sets
   and join tables hash. *)
let key_of_row cols positions row =
  Array.map (fun c -> cell cols.(c) row) positions

let gather_col col idx =
  let n = Array.length idx in
  match col with
  | C_int a -> C_int (Array.init n (fun i -> a.(idx.(i))))
  | C_bool b ->
    let out = Bytes.make n '\000' in
    for i = 0 to n - 1 do
      Bytes.set out i (Bytes.get b idx.(i))
    done;
    C_bool out
  | C_obj a -> C_obj (Array.init n (fun i -> a.(idx.(i))))

let gather_cols cols idx = Array.map (fun c -> gather_col c idx) cols

(* Dense batch from gathered columns. *)
let of_cols pool cols nrows = { cols; nrows; sel = None; pool }

(* Growable integer vector — collects the gather indices of a join
   whose output size is not known up front. *)
module Ivec = struct
  type t = { mutable a : int array; mutable n : int }

  let create () = { a = Array.make 256 0; n = 0 }

  let push v x =
    if v.n = Array.length v.a then begin
      let bigger = Array.make (2 * v.n) 0 in
      Array.blit v.a 0 bigger 0 v.n;
      v.a <- bigger
    end;
    v.a.(v.n) <- x;
    v.n <- v.n + 1

  let length v = v.n
  let to_array v = Array.sub v.a 0 v.n
end

(* --- Output accumulator ---------------------------------------------- *)

(* Collects the integer cells of rows the batched materializer actually
   inserted (duplicates skipped by the destination relation are skipped
   here too), and rebuilds them into an [encoded] for
   [register_unordered].  Column classes come from the destination
   schema so an empty output still yields well-shaped columns. *)
type acc = { a_cls : cls array; a_vecs : Ivec.t array }

let acc_create cls =
  { a_cls = cls; a_vecs = Array.map (fun _ -> Ivec.create ()) cls }

let acc_push acc b row =
  Array.iteri (fun c vec -> Ivec.push vec (cell b.cols.(c) row)) acc.a_vecs

(* Append one already-interned cell to one column — for builders that
   produce integer images directly instead of decoding a batch. *)
let acc_push_cell acc c x = Ivec.push acc.a_vecs.(c) x

let acc_finish acc =
  let n = if Array.length acc.a_vecs = 0 then 0 else Ivec.length acc.a_vecs.(0) in
  let cols =
    Array.mapi
      (fun c vec ->
        let a = Ivec.to_array vec in
        match acc.a_cls.(c) with
        | K_int -> C_int a
        | K_obj -> C_obj a
        | K_bool ->
          let b = Bytes.make n '\000' in
          Array.iteri (fun r x -> if x <> 0 then Bytes.set b r '\001') a;
          C_bool b)
      acc.a_vecs
  in
  { e_cols = cols; e_rows = n }

(* --- Integer-row hash tables ----------------------------------------- *)

module Ikey = Hashtbl.Make (struct
  type t = int array

  let equal a b =
    Array.length a = Array.length b
    &&
    let rec go i = i >= Array.length a || (a.(i) = b.(i) && go (i + 1)) in
    go 0

  let hash k = Array.fold_left (fun acc v -> (acc * 31) + v) 17 k
end)
