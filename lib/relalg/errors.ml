(* Common error conditions of the relational substrate.

   All substrate modules raise these exceptions rather than ad-hoc
   [Failure]s so that callers (engine, language front end, tests) can
   discriminate failure modes. *)

exception Type_error of string
(** Two values of incompatible domains were combined, or a value does not
    belong to the domain it was declared with. *)

exception Schema_error of string
(** A schema was constructed or used inconsistently (duplicate attribute
    names, key attribute not present, arity mismatch, ...). *)

exception Duplicate_key of string
(** Insertion of an element whose key already identifies a different
    element of the relation (PASCAL/R key constraint violation). *)

exception Unknown_relation of string
(** A database lookup or reference dereference named a relation that is
    not in the catalog. *)

exception Unknown_attribute of string
(** An attribute name was not found in a schema. *)

exception Dangling_reference of string
(** Dereferencing a reference whose target element has been deleted. *)

exception Io_error of string
(** A (simulated) device or operating-system failure: a torn write, a
    failed write-back during eviction, a crash during [Database.save].
    The operation did not take effect; committed state is unchanged. *)

exception Corruption of string
(** Stored bytes failed validation: a page checksum mismatch, a short
    read, or undecodable record bytes.  Raised instead of crashing so
    the storage layer can invalidate, refetch and rebuild. *)

exception Frozen of string
(** Direct mutation of a frozen relation.  Committed relation states of
    a durable (WAL-attached) database are frozen — snapshot readers may
    be iterating them — so all mutation must go through a write
    transaction, which works on private copies. *)

exception Txn_conflict of string
(** First-committer-wins: between this transaction's snapshot and its
    commit, another transaction committed to a relation it wrote.  The
    transaction is aborted; the caller may retry on a fresh snapshot. *)

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt
let schema_error fmt = Format.kasprintf (fun s -> raise (Schema_error s)) fmt
let io_error fmt = Format.kasprintf (fun s -> raise (Io_error s)) fmt
let corruption fmt = Format.kasprintf (fun s -> raise (Corruption s)) fmt
let frozen fmt = Format.kasprintf (fun s -> raise (Frozen s)) fmt
let txn_conflict fmt = Format.kasprintf (fun s -> raise (Txn_conflict s)) fmt
