(* Failpoint fault injection: named sites at the storage layer's I/O
   boundaries consult this registry on every hit.  Tests and the CLI arm
   a site with a deterministic trigger; the instrumented code then
   simulates the corresponding fault (torn write, short read, eviction
   I/O failure, record corruption, crash during save).

   The unarmed fast path is one integer load and compare, so the
   instrumentation costs nothing measurable when no site is armed. *)

type trigger =
  | Nth of int  (* fire on exactly the Nth hit (1-based), once *)
  | Every of int  (* fire on every Kth hit *)
  | Seeded of { seed : int; prob : float }  (* per-hit Bernoulli, own PRNG *)

let trigger_to_string = function
  | Nth n -> Printf.sprintf "nth:%d" n
  | Every k -> Printf.sprintf "every:%d" k
  | Seeded { seed; prob } -> Printf.sprintf "prob:%g:%d" prob seed

(* "nth:N" | "every:K" | "prob:P:SEED" (seed optional, default 0). *)
let trigger_of_string spec =
  let fail () =
    invalid_arg
      (Printf.sprintf
         "Failpoint.trigger_of_string: %S (expected nth:N, every:K or \
          prob:P:SEED)"
         spec)
  in
  match String.split_on_char ':' spec with
  | [ "nth"; n ] -> (
    match int_of_string_opt n with
    | Some n when n >= 1 -> Nth n
    | _ -> fail ())
  | [ "every"; k ] -> (
    match int_of_string_opt k with
    | Some k when k >= 1 -> Every k
    | _ -> fail ())
  | [ "prob"; p ] | [ "prob"; p; "" ] -> (
    match float_of_string_opt p with
    | Some p when p >= 0.0 && p <= 1.0 -> Seeded { seed = 0; prob = p }
    | _ -> fail ())
  | [ "prob"; p; s ] -> (
    match float_of_string_opt p, int_of_string_opt s with
    | Some p, Some seed when p >= 0.0 && p <= 1.0 -> Seeded { seed; prob = p }
    | _ -> fail ())
  | _ -> fail ()

(* The storage layer's instrumented sites. *)
let standard_sites =
  [
    "heap.write.partial";
    "heap.read.short";
    "pool.evict.io";
    "codec.decode.corrupt";
    "db.save.crash";
    "wal.append.crash";
    "wal.fsync.crash";
    "wal.checkpoint.crash";
    "index.save.crash";
    "index.load.corrupt";
  ]

type armed_site = {
  trigger : trigger;
  mutable hits : int;  (* consultations since arming *)
  mutable fired : int;  (* times the site actually fired *)
  mutable rng : int64;  (* splitmix64 state (Seeded triggers) *)
}

let registry : (string, armed_site) Hashtbl.t = Hashtbl.create 8
let armed_count = ref 0

let arm site trigger =
  if not (Hashtbl.mem registry site) then incr armed_count;
  let rng =
    match trigger with
    | Seeded { seed; _ } -> Int64.of_int seed
    | Nth _ | Every _ -> 0L
  in
  Hashtbl.replace registry site { trigger; hits = 0; fired = 0; rng }

let disarm site =
  if Hashtbl.mem registry site then begin
    Hashtbl.remove registry site;
    decr armed_count
  end

let disarm_all () =
  Hashtbl.reset registry;
  armed_count := 0

let any_armed () = !armed_count > 0
let armed site = Option.map (fun a -> a.trigger) (Hashtbl.find_opt registry site)

let armed_sites () =
  Hashtbl.fold (fun site a acc -> (site, a.trigger) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let hit_count site =
  match Hashtbl.find_opt registry site with Some a -> a.hits | None -> 0

let fire_count site =
  match Hashtbl.find_opt registry site with Some a -> a.fired | None -> 0

(* splitmix64 step; the same generator the workload PRNG uses, inlined
   here because relalg must not depend on the workload library. *)
let splitmix_next st =
  let open Int64 in
  let z = add !st 0x9E3779B97F4A7C15L in
  st := z;
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let uniform_float st =
  (* 53 random bits into [0, 1). *)
  let bits = Int64.shift_right_logical (splitmix_next st) 11 in
  Int64.to_float bits /. 9007199254740992.0

let fired site a =
  a.fired <- a.fired + 1;
  Obs.Metrics.incr "failpoint.fired";
  Obs.Metrics.incr ("failpoint.fired." ^ site);
  true

let consult site a =
  a.hits <- a.hits + 1;
  match a.trigger with
  | Nth n -> if a.hits = n then fired site a else false
  | Every k -> if a.hits mod k = 0 then fired site a else false
  | Seeded { prob; _ } ->
    let st = ref a.rng in
    let u = uniform_float st in
    a.rng <- !st;
    if u < prob then fired site a else false

(* Should the fault at [site] fire now?  One compare when nothing is
   armed anywhere; a hashtable probe when the framework is active. *)
let should_fire site =
  if !armed_count = 0 then false
  else
    match Hashtbl.find_opt registry site with
    | None -> false
    | Some a -> consult site a

(* "SITE=SPEC" (CLI syntax), e.g. "heap.read.short=nth:2". *)
let arm_spec spec =
  match String.index_opt spec '=' with
  | None ->
    invalid_arg
      (Printf.sprintf "Failpoint.arm_spec: %S (expected SITE=TRIGGER)" spec)
  | Some i ->
    let site = String.sub spec 0 i in
    let trig = String.sub spec (i + 1) (String.length spec - i - 1) in
    if String.equal site "" then
      invalid_arg "Failpoint.arm_spec: empty site name";
    arm site (trigger_of_string trig)
