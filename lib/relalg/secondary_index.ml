(* Persistent secondary indexes.

   Unlike {!Index} — the paper's throwaway per-query structure, built by
   a counted scan and discarded with the query — a secondary index is a
   catalogued access path: declared once per component list, maintained
   incrementally through every relation mutation (via {!Relation}
   observers), copied on first write by MVCC transactions alongside the
   relation copy, and persisted inside database snapshots as
   checksummed pages.

   Two physical kinds:
   - [Hash]: component values -> tuple buckets; O(1) equality probes.
   - [Sorted]: the same bucket table plus a lazily (re)built sorted key
     array with prefix counts, serving S3-style range restrictions
     (<, <=, >, >=) by binary search and answering "what fraction of
     the relation matches?" exactly in O(log n) — the figure the cost
     model's access-path choice runs on.

   Buckets store whole tuples, not references: a probe hands the
   executor ready tuples with no dereference, and a delete removes by
   tuple equality.  Bucket lists are immutable (mutation replaces the
   bucket), so {!copy}'s shallow table copy gives a write transaction a
   private index in O(distinct keys) while sharing all bucket spines
   with the committed state. *)

type kind = Hash | Sorted

let kind_to_string = function Hash -> "hash" | Sorted -> "sorted"

let kind_of_string = function
  | "hash" -> Hash
  | "sorted" -> Sorted
  | s -> Errors.type_error "unknown index kind %S" s

type t = {
  source : string;
  on : string list;
  kind : kind;
  positions : int array;
  tbl : Tuple.t list Value_key.table;  (* component values -> tuples *)
  mutable entry_count : int;
  mutable sorted : (Value.t list * Tuple.t list) array;
      (* [Sorted] only: entries in ascending key order, rebuilt lazily
         on the first range probe after a mutation *)
  mutable prefix : int array;
      (* prefix.(i) = total tuples in sorted.(0..i-1); length n+1, so
         a key span's exact tuple count is one subtraction *)
  mutable sorted_dirty : bool;
  probes : int Atomic.t;
      (* atomic, not plain mutable: a built index is probed read-only
         by concurrent Domain_pool workers during parallel collection *)
}

let source t = t.source
let on t = t.on
let kind t = t.kind
let entry_count t = t.entry_count
let distinct_keys t = Value_key.Table.length t.tbl
let probe_count t = Atomic.get t.probes
let reset_counters t = Atomic.set t.probes 0

let count_probe t =
  Atomic.incr t.probes;
  Obs.Metrics.incr "index.probes";
  Obs.Metrics.incr "secondary.probes"

let create ~kind rel ~on =
  let schema = Relation.schema rel in
  if on = [] then Errors.schema_error "secondary index needs components";
  let positions = Array.of_list (List.map (Schema.index_of schema) on) in
  {
    source = Relation.name rel;
    on;
    kind;
    positions;
    tbl = Value_key.create 64;
    entry_count = 0;
    sorted = [||];
    prefix = [||];
    sorted_dirty = true;
    probes = Atomic.make 0;
  }

let key_of t tuple = Array.to_list (Tuple.project t.positions tuple)

(* --- Incremental maintenance (fed by Relation observers) ----------- *)

let on_insert t tuple =
  Value_key.add_multi t.tbl (key_of t tuple) tuple;
  t.entry_count <- t.entry_count + 1;
  t.sorted_dirty <- true;
  Obs.Metrics.incr "secondary.maintain_inserts"

let on_delete t tuple =
  let key = key_of t tuple in
  match Value_key.Table.find_opt t.tbl key with
  | None -> ()
  | Some bucket ->
    let bucket' = List.filter (fun u -> not (Tuple.equal u tuple)) bucket in
    let removed = List.length bucket - List.length bucket' in
    if removed > 0 then begin
      (match bucket' with
      | [] -> Value_key.Table.remove t.tbl key
      | _ -> Value_key.Table.replace t.tbl key bucket');
      t.entry_count <- t.entry_count - removed;
      t.sorted_dirty <- true;
      Obs.Metrics.incr "secondary.maintain_deletes"
    end

let on_clear t =
  Value_key.Table.reset t.tbl;
  t.entry_count <- 0;
  t.sorted <- [||];
  t.prefix <- [||];
  t.sorted_dirty <- true

(* Build by one counted scan of the source — same read the paper's
   per-query index build pays, but paid once per declaration. *)
let build ~kind rel ~on =
  Obs.Metrics.incr "secondary.builds";
  let t = create ~kind rel ~on in
  Relation.scan (on_insert t) rel;
  t

(* Rebuild from stored snapshot pages: the tuples were decoded from the
   index's own persisted section, no relation scan involved. *)
let of_tuples ~kind rel ~on tuples =
  let t = create ~kind rel ~on in
  List.iter (on_insert t) tuples;
  t

(* MVCC copy-on-write: shallow-copy the bucket table (buckets are
   immutable lists), reset the lazy sorted view.  Probe counters start
   fresh — the copy is a new measurable object. *)
let copy t =
  {
    t with
    tbl = Value_key.Table.copy t.tbl;
    sorted = [||];
    prefix = [||];
    sorted_dirty = true;
    probes = Atomic.make 0;
  }

(* --- Probing -------------------------------------------------------- *)

let probe t key =
  count_probe t;
  Value_key.find_multi t.tbl key

let probe1 t v = probe t [ v ]

let ensure_sorted t =
  if t.sorted_dirty then begin
    let entries =
      Value_key.Table.fold (fun k b acc -> (k, b) :: acc) t.tbl []
    in
    let arr = Array.of_list entries in
    Array.sort (fun (a, _) (b, _) -> Value.compare_list a b) arr;
    let n = Array.length arr in
    let prefix = Array.make (n + 1) 0 in
    for i = 0 to n - 1 do
      prefix.(i + 1) <- prefix.(i) + List.length (snd arr.(i))
    done;
    t.sorted <- arr;
    t.prefix <- prefix;
    t.sorted_dirty <- false;
    Obs.Metrics.incr "secondary.sorts"
  end

(* First sorted entry whose key compares >= [v] ([gt] false) or > [v]
   ([gt] true); [n] when none does. *)
let bound t ~gt v =
  let arr = t.sorted in
  let n = Array.length arr in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let c =
      match fst arr.(mid) with
      | [ k ] -> Value.compare k v
      | _ ->
        Errors.type_error "range probe on a multi-component index over %s"
          t.source
    in
    if c < 0 || (gt && c = 0) then lo := mid + 1 else hi := mid
  done;
  !lo

(* The half-open sorted-entry span [lo, hi) matching [v' op v]. *)
let span t op v =
  ensure_sorted t;
  let n = Array.length t.sorted in
  match op with
  | Value.Lt -> (0, bound t ~gt:false v)
  | Value.Le -> (0, bound t ~gt:true v)
  | Value.Gt -> (bound t ~gt:true v, n)
  | Value.Ge -> (bound t ~gt:false v, n)
  | Value.Eq | Value.Ne ->
    invalid_arg "Secondary_index.span: not an order comparison"

(* Enumerate tuples matching [indexed-value op v].  Equality goes
   through the bucket table on any kind; order comparisons need the
   sorted view and count as one range probe regardless of span size. *)
let iter_matching t op v f =
  match op with
  | Value.Eq -> List.iter f (probe t [ v ])
  | Value.Lt | Value.Le | Value.Gt | Value.Ge ->
    count_probe t;
    Obs.Metrics.incr "secondary.range_scans";
    let lo, hi = span t op v in
    for i = lo to hi - 1 do
      List.iter f (snd t.sorted.(i))
    done
  | Value.Ne ->
    count_probe t;
    Value_key.Table.iter
      (fun key bucket ->
        match key with
        | [ k ] -> if not (Value.equal k v) then List.iter f bucket
        | _ ->
          Errors.type_error "Ne probe on a multi-component index over %s"
            t.source)
      t.tbl

(* Exact fraction of the indexed tuples matching [op v] — the planner's
   selectivity figure.  O(1) for equality (bucket length), O(log n) for
   order comparisons (prefix counts over the sorted view).  Uncounted:
   this is planning, not execution. *)
let matching_fraction t op v =
  if t.entry_count = 0 then 0.0
  else
    let total = float_of_int t.entry_count in
    match op with
    | Value.Eq ->
      float_of_int (List.length (Value_key.find_multi t.tbl [ v ])) /. total
    | Value.Ne ->
      1.0
      -. float_of_int (List.length (Value_key.find_multi t.tbl [ v ]))
         /. total
    | Value.Lt | Value.Le | Value.Gt | Value.Ge ->
      let lo, hi = span t op v in
      float_of_int (t.prefix.(hi) - t.prefix.(lo)) /. total

(* All indexed tuples, sorted — the deterministic enumeration the
   snapshot serializer writes as this index's pages. *)
let to_list t =
  List.sort Tuple.compare
    (Value_key.Table.fold (fun _ b acc -> List.rev_append b acc) t.tbl [])

(* Full consistency check against the source relation: same
   cardinality, every tuple present in its own bucket, no strays.
   Test-suite teeth for the maintenance paths. *)
let consistent_with t rel =
  t.entry_count = Relation.cardinality rel
  && Value_key.Table.fold
       (fun key bucket acc ->
         acc
         && List.for_all
              (fun tup ->
                Relation.mem_tuple rel tup
                && List.equal Value.equal key (key_of t tup))
              bucket)
       t.tbl true
  && Relation.for_all
       (fun tup ->
         List.exists (Tuple.equal tup)
           (Value_key.find_multi t.tbl (key_of t tup)))
       rel
