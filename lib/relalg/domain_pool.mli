(** A small reusable pool of worker domains.

    The engine proper is single-threaded on the main domain; the pool
    exists so the collection phase and the partitioned {!Algebra}
    operators can fan independent, side-effect-free-on-shared-state
    work out across cores.  Worker domains are spawned lazily on first
    parallel call and reused across queries — spawning a domain costs
    milliseconds, far more than the work items it runs — and simply
    stay parked on the task queue for the life of the process.

    Contract with callers (the determinism story of DESIGN.md):
    - [jobs <= 1] bypasses the pool entirely: the work runs inline on
      the caller, in index order, touching no mutex, no snapshot and no
      worker — the serial engine is byte-identical to the pre-pool one.
    - Tasks must not touch shared mutable engine state ({!Relation.t},
      {!Buffer_pool}, …); they receive immutable snapshots and build
      private results the caller combines in task order.
    - {!Obs.Metrics} increments made inside a worker land in that
      domain's private registry; the pool captures them per task as a
      snapshot delta and merges them into the caller's registry after
      the join, so counter totals equal the serial run's.
    - An exception raised by a task is caught, and the join point
      re-raises the one from the lowest task index — the same error the
      serial engine (which runs tasks in index order and stops at the
      first failure) would report.  Tasks being independent, the lowest
      failing index does not depend on scheduling. *)

type par = { jobs : int; threshold : int }
(** Parallelism budget as resolved by [Exec_opts]: worker count
    (including the caller, which always participates) and the input
    cardinality below which partitioned operators stay serial. *)

val active : par option -> int -> par option
(** [active par n] is [Some p] when [par] allows parallel execution of
    an [n]-element input: [p.jobs > 1] and [n >= p.threshold]. *)

val run_tasks : jobs:int -> int -> (int -> unit) -> unit
(** [run_tasks ~jobs n f] runs [f 0 .. f (n-1)], fanned across at most
    [jobs] domains (the caller plus up to [jobs-1] pool workers).
    Returns after all tasks finish; worker metrics deltas are merged
    and the lowest-index task exception (if any) re-raised, as per the
    module contract.  With [jobs <= 1], [n <= 1], or when already
    running on a pool worker (nested parallelism), the tasks run inline
    on the caller in index order. *)

val parallel_map : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map ~jobs f arr] maps [f] over [arr] via {!run_tasks};
    the result array is in input order regardless of [jobs]. *)

val chunk : pieces:int -> 'a array -> 'a array array
(** Split into at most [pieces] contiguous, order-preserving,
    balanced chunks (each within one element of [n/pieces]); empty
    input gives no chunks.  Concatenating the chunks in order yields
    the input array back — the identity partitioned operators rely on
    for [jobs]-independent output ordering. *)

val parallel_chunks : jobs:int -> 'a array -> (int -> 'a array -> 'b) -> 'b list
(** [parallel_chunks ~jobs arr f] chunks [arr] into at most [jobs]
    pieces, applies [f chunk_index chunk] to each in parallel, and
    returns the results in chunk order.  Bumps the ["parallel.chunks"]
    counter by the number of chunks when more than one is used. *)

val spawned_domains : unit -> int
(** Total worker domains spawned so far in this process — observable
    pool-reuse evidence for tests: repeated parallel calls at the same
    [jobs] must not grow it (until a {!shutdown}, after which the next
    parallel call respawns and the total grows again). *)

val shutdown : unit -> unit
(** Quiesce the pool: drain pending jobs, stop and join every worker
    domain.  Even parked workers tax later stop-the-world GC sections,
    so long-lived processes (the bench harness, the traffic driver)
    call this once a parallel phase is over.  Must not be called with a
    {!run_tasks} in flight.  The pool respawns lazily on the next
    parallel call; a no-op when no workers are alive. *)
