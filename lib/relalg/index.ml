(* Indexes: relations associating component values with references
   (paper Section 3.2 and Figure 2, e.g. ind_t_cnr : RELATION <tcnr,tref>).

   An index is built on one or more components of a source relation,
   optionally *partial* (restricted by a predicate — "a (partial) INDEX
   on one relation involved in the join term is created").  Lookup by
   value supports equality join terms; [fold_entries] supports the
   general comparison operators. *)

type t = {
  source : string;
  on : string list;
  positions : int array;
  tbl : Value.reference list Value_key.table;
  mutable entry_count : int;
  probes : int Atomic.t;
      (* lookups and comparison walks against this index.  Atomic, not
         plain mutable: a built index is probed read-only by concurrent
         Domain_pool workers during parallel collection, and this
         counter is the one piece of state those probes write. *)
}

let source t = t.source
let on t = t.on
let entry_count t = t.entry_count
let probe_count t = Atomic.get t.probes
let reset_counters t = Atomic.set t.probes 0

let count_probe t =
  Atomic.incr t.probes;
  Obs.Metrics.incr "index.probes"

let create rel ~on =
  let schema = Relation.schema rel in
  let positions =
    Array.of_list (List.map (Schema.index_of schema) on)
  in
  {
    source = Relation.name rel;
    on;
    positions;
    tbl = Value_key.create 64;
    entry_count = 0;
    probes = Atomic.make 0;
  }

let add t rel tuple =
  let key = Array.to_list (Tuple.project t.positions tuple) in
  Value_key.add_multi t.tbl key (Reference.of_tuple rel tuple);
  t.entry_count <- t.entry_count + 1;
  Obs.Metrics.incr "index.entries"

(* Build by a (counted) scan of the source relation; [filter] makes the
   index partial. *)
let build ?filter rel ~on =
  Obs.Metrics.incr "index.builds";
  let t = create rel ~on in
  let keep = Option.value filter ~default:(fun _ -> true) in
  Relation.scan (fun tuple -> if keep tuple then add t rel tuple) rel;
  t

let lookup t values =
  count_probe t;
  Value_key.find_multi t.tbl values

let lookup1 t v = lookup t [ v ]

let mem t values = lookup t values <> []

let fold_entries f init t =
  Value_key.Table.fold (fun key refs acc -> f acc key refs) t.tbl init

let iter_entries f t =
  Value_key.Table.iter (fun key refs -> f key refs) t.tbl

(* Entries whose (single-component) key satisfies [v' op probe] where v'
   is the indexed value — the general-operator probe used by indirect
   join construction for non-equality join terms. *)
let fold_matching t op probe f init =
  match op with
  | Value.Eq -> List.fold_left f init (lookup t [ probe ])
  | Value.Ne | Value.Lt | Value.Le | Value.Gt | Value.Ge ->
    count_probe t;
    fold_entries
      (fun acc key refs ->
        match key with
        | [ v ] ->
          if Value.apply op v probe then List.fold_left f acc refs else acc
        | _ ->
          Errors.type_error
            "comparison probe on a multi-component index over %s" t.source)
      init t

(* As [fold_matching], but folding whole entries tagged with a stable
   entry ordinal: the entry's position in [fold_entries] enumeration
   order, matching the ordinals a prior [fold_entries] walk over the
   unmodified index would assign.  The vectorized collection builder
   pre-interns each entry's references once and reuses them across
   every probe through this fold.  [Eq] probes find their bucket by
   lookup, not a walk, and report no ordinal.  Probe counting is
   identical to [fold_matching]. *)
let fold_matching_entries t op probe f init =
  match op with
  | Value.Eq -> f init None (lookup t [ probe ])
  | Value.Ne | Value.Lt | Value.Le | Value.Gt | Value.Ge ->
    count_probe t;
    let ord = ref (-1) in
    fold_entries
      (fun acc key refs ->
        incr ord;
        match key with
        | [ v ] ->
          if Value.apply op v probe then f acc (Some !ord) refs else acc
        | _ ->
          Errors.type_error
            "comparison probe on a multi-component index over %s" t.source)
      init t

(* Existence version of {!fold_matching}, with early exit. *)
let exists_matching t op probe =
  match op with
  | Value.Eq -> lookup t [ probe ] <> []
  | Value.Ne | Value.Lt | Value.Le | Value.Gt | Value.Ge ->
    count_probe t;
    let found = ref false in
    (try
       iter_entries
         (fun key _ ->
           match key with
           | [ v ] ->
             if Value.apply op v probe then begin
               found := true;
               raise Exit
             end
           | _ ->
             Errors.type_error
               "comparison probe on a multi-component index over %s" t.source)
         t
     with Exit -> ());
    !found

let distinct_keys t =
  fold_entries (fun acc key _ -> key :: acc) [] t |> List.length

(* Materialize the index as a relation <components..., ref>, the form
   Figure 2 declares.  Used for explanation and tests. *)
let to_relation ?(name = "") t schema_of_source =
  let attr_of n =
    Schema.attr n (Schema.type_of schema_of_source n)
  in
  let attrs = List.map attr_of t.on @ [ Schema.attr "ref" (Vtype.reference t.source) ] in
  let rel = Relation.create ~name (Schema.make attrs ~key:[]) in
  iter_entries
    (fun key refs ->
      List.iter
        (fun r ->
          Relation.insert rel
            (Tuple.of_list (key @ [ Value.VRef r ])))
        refs)
    t;
  rel
