(** Paged heap files: length-prefixed records packed into fixed-size
    pages with a per-page checksum word; iteration goes through a
    {!Buffer_pool}. *)

val page_size : int

val header_size : int
(** Bytes reserved at the head of every page: u16 used count plus the
    u32 Adler-32 checksum of the payload region. *)

type t

val create : unit -> t
val file_id : t -> int
val page_count : t -> int
val record_count : t -> int

val append : t -> Bytes.t -> unit
(** Appends and updates the page checksum.  Consults the
    [heap.write.partial] failpoint: a fired site leaves the page torn
    with a stale checksum and raises {!Errors.Io_error}.
    @raise Errors.Type_error if the record exceeds the page size. *)

val clear : t -> unit

val iter : pool:Buffer_pool.t -> t -> (Bytes.t -> unit) -> unit
(** Iterate all records; each page access is charged to [pool] and
    validated against the page checksum (the [heap.read.short]
    failpoint is consulted per page).
    @raise Errors.Corruption on checksum mismatch or short read. *)
