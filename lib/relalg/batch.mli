(** Column-major tuple batches for the vectorized stream kernels.

    Fixed-width components (integers, booleans) are stored unboxed
    ([int array], one byte per row in [Bytes]); strings, enums and
    references are interned into a chain-scoped {!pool} and stored as
    pool ids.  Interning is injective with respect to {!Value.equal}, so
    the integer image of a row ({!key_of_row}) compares like the tuple
    itself — dedup sets and join tables hash machine integers instead of
    re-hashing nested reference keys per row.

    A batch optionally carries a selection vector (ascending live row
    indices): filters refine it, projections share the column arrays,
    and only the row-multiplying operators gather into dense columns. *)

type col = C_int of int array | C_bool of Bytes.t | C_obj of int array

type encoded
(** One relation's columns, encoded in iteration order. *)

type pool
(** Chain-scoped interning state plus a per-relation encode cache. *)

type t = {
  cols : col array;
  nrows : int;                (** physical length of every column *)
  sel : int array option;     (** ascending live row indices; [None] = all *)
  pool : pool;
}

exception Unbatchable
(** A value did not fit its column's declared class.  Unreachable for
    well-typed tuples; callers treat it as "fall back to scalar". *)

val create_pool : unit -> pool
val intern : pool -> Value.t -> int
val value : pool -> int -> Value.t

type cls = K_int | K_bool | K_obj

val cls_of_type : Vtype.t -> cls
(** The column class an attribute domain encodes into — kernels refuse
    to pair columns of different classes. *)

val encode_relation : pool -> Relation.t -> encoded
(** Encode a relation's contents (uninstrumented iteration order),
    memoized in the pool by physical identity and content version. *)

val register_unordered : pool -> Relation.t -> encoded -> unit
(** Hand the pool an encode of the relation's contents in INSERTION
    order — the batched materializer calls this with the columns it
    just decoded, so a later set-semantics pass skips the re-encode. *)

val encode_relation_unordered : pool -> Relation.t -> encoded
(** Like {!encode_relation} but may return a {!register_unordered}
    encode whose row order is not the iteration order.  The row set is
    always the relation's contents; only order-insensitive consumers
    (the columnar divide) may use this. *)

val encoded_rows : encoded -> int

val of_encoded : pool -> encoded -> off:int -> len:int -> t
(** Zero-copy window onto an encoded relation: shared columns, the
    selection vector naming rows [off .. off+len-1]. *)

val live_count : t -> int
val live_iter : (int -> unit) -> t -> unit

val cell : col -> int -> int
(** Integer image of one cell (value, 0/1 byte, or pool id). *)

val tuple : t -> int -> Tuple.t
(** Decode one row back to a boxed tuple; interned cells return the
    physically original values. *)

val filter : t -> (int -> bool) -> t
(** Refine the selection vector to the live rows satisfying the
    predicate (given row indices). *)

val project : t -> int array -> t
(** Share the named columns; no copying. *)

val key_of_row : col array -> int array -> int -> int array
(** Integer key of a row over the positioned columns. *)

val gather_cols : col array -> int array -> col array
(** Dense copies of the columns at the given row indices. *)

val of_cols : pool -> col array -> int -> t

(** Growable integer vector — gather-index accumulator for joins whose
    output size is unknown up front. *)
module Ivec : sig
  type t

  val create : unit -> t
  val push : t -> int -> unit
  val length : t -> int
  val to_array : t -> int array
end

type acc
(** Output accumulator: collects the integer cells of the rows a
    batched materialize actually inserts, for {!register_unordered}. *)

val acc_create : cls array -> acc
(** Column classes come from the destination schema, so an empty
    output still finishes into well-shaped columns. *)

val acc_push : acc -> t -> int -> unit
(** Append the given (physical) row's cells to the accumulator. *)

val acc_push_cell : acc -> int -> int -> unit
(** [acc_push_cell acc c x] appends the integer image [x] to column
    [c] — for builders that produce interned ids directly. *)

val acc_finish : acc -> encoded

(** Hash tables keyed by integer rows. *)
module Ikey : Hashtbl.S with type key = int array
