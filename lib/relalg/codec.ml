(* Binary encoding of tuples for the paged storage layer.

   Scalar values are encoded against the relation's schema (enumerations
   as bare ordinals, reconstructed from the schema's enum info on
   decode); reference values are self-described, with nested enum values
   carrying their enumeration name and ordinal. *)

let u16_max = 0xFFFF

let put_u16 buf n =
  if n < 0 || n > u16_max then Errors.type_error "codec: u16 overflow (%d)" n;
  Buffer.add_char buf (Char.chr (n land 0xFF));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xFF))

let put_i64 buf n =
  for i = 0 to 7 do
    Buffer.add_char buf (Char.chr ((n lsr (8 * i)) land 0xFF))
  done

let put_string buf s =
  put_u16 buf (String.length s);
  Buffer.add_string buf s

type cursor = { bytes : Bytes.t; mutable pos : int }

let cursor bytes = { bytes; pos = 0 }

(* Every cursor read is bounds-checked: running off the end of the
   buffer means the stored bytes are damaged (short read, torn write),
   and must surface as a typed {!Errors.Corruption}, never as an
   [Invalid_argument] crash from [Bytes.get]. *)
let need c k =
  if c.pos + k > Bytes.length c.bytes then
    Errors.corruption
      "codec: truncated record (need %d bytes at offset %d of %d)" k c.pos
      (Bytes.length c.bytes)

let get_u8 c =
  need c 1;
  let n = Char.code (Bytes.get c.bytes c.pos) in
  c.pos <- c.pos + 1;
  n

let get_u16 c =
  let lo = get_u8 c in
  let hi = get_u8 c in
  lo lor (hi lsl 8)

let get_i64 c =
  let n = ref 0 in
  for i = 0 to 7 do
    n := !n lor (get_u8 c lsl (8 * i))
  done;
  !n

let get_string c =
  let len = get_u16 c in
  need c len;
  let s = Bytes.sub_string c.bytes c.pos len in
  c.pos <- c.pos + len;
  s

(* Adler-32 over [len] bytes of [bytes] starting at [pos]: the checksum
   word stored in heap pages and at the tail of database snapshots.
   Fast, order-sensitive, and catches the single-byte and truncation
   damage the fault injector produces. *)
let adler32 bytes ~pos ~len =
  let a = ref 1 and b = ref 0 in
  for i = pos to pos + len - 1 do
    a := (!a + Char.code (Bytes.get bytes i)) mod 65521;
    b := (!b + !a) mod 65521
  done;
  (!b lsl 16) lor !a

(* Self-described value encoding (used inside references). *)
let rec put_value buf (v : Value.t) =
  match v with
  | Value.VInt n ->
    Buffer.add_char buf 'i';
    put_i64 buf n
  | Value.VStr s ->
    Buffer.add_char buf 's';
    put_string buf s
  | Value.VBool b ->
    Buffer.add_char buf 'b';
    Buffer.add_char buf (if b then '\001' else '\000')
  | Value.VEnum (info, ord) ->
    Buffer.add_char buf 'e';
    put_string buf info.Value.enum_name;
    put_u16 buf ord
  | Value.VRef r ->
    Buffer.add_char buf 'r';
    put_string buf r.Value.target;
    put_u16 buf (List.length r.Value.key);
    List.iter (put_value buf) r.Value.key

let rec get_value c : Value.t =
  match Char.chr (get_u8 c) with
  | 'i' -> Value.VInt (get_i64 c)
  | 's' -> Value.VStr (get_string c)
  | 'b' -> Value.VBool (get_u8 c <> 0)
  | 'e' ->
    let name = get_string c in
    let ord = get_u16 c in
    (* Labels are not stored; equality and ordering only need the
       enumeration's name and the ordinal. *)
    Value.VEnum ({ Value.enum_name = name; labels = [||] }, ord)
  | 'r' ->
    let target = get_string c in
    let n = get_u16 c in
    let key = List.init n (fun _ -> get_value c) in
    Value.VRef { Value.target; key }
  | tag -> Errors.corruption "codec: unknown value tag %C" tag

(* Schema-directed encoding: enumerations shrink to their ordinal and
   are reconstructed with the schema's full enum info. *)
let put_typed buf ty (v : Value.t) =
  match ty, v with
  | Vtype.TEnum _, Value.VEnum (_, ord) ->
    Buffer.add_char buf 'o';
    put_u16 buf ord
  | _, v -> put_value buf v

let get_typed c ty : Value.t =
  need c 1;
  match Char.chr (Char.code (Bytes.get c.bytes c.pos)) with
  | 'o' -> (
    c.pos <- c.pos + 1;
    let ord = get_u16 c in
    match ty with
    | Vtype.TEnum info -> Value.VEnum (info, ord)
    | _ -> Errors.corruption "codec: ordinal for a non-enum attribute")
  | _ -> get_value c

let encode_tuple schema (t : Tuple.t) =
  let buf = Buffer.create 32 in
  Array.iteri (fun i v -> put_typed buf (Schema.type_at schema i) v) t;
  Buffer.to_bytes buf

let decode_tuple schema bytes : Tuple.t =
  (* codec.decode.corrupt: damage the first byte of (a copy of) the
     record before decoding.  0xFF is not a value tag, so the damage is
     always detected and surfaces as {!Errors.Corruption}. *)
  let bytes =
    if Failpoint.should_fire "codec.decode.corrupt" then
      if Bytes.length bytes = 0 then
        Errors.corruption "codec: injected corruption on empty record"
      else begin
        let damaged = Bytes.copy bytes in
        Bytes.set damaged 0 '\xFF';
        damaged
      end
    else bytes
  in
  let c = { bytes; pos = 0 } in
  Array.init (Schema.arity schema) (fun i -> get_typed c (Schema.type_at schema i))
