(** Write-ahead log: incremental group-commit durability between
    {!Database.save} checkpoints.

    A committed transaction's logical operations are encoded through
    {!Codec} into one Adler-32-checksummed record, appended and fsynced
    before the in-memory install.  {!replay} applies the intact records
    on top of the last snapshot; a checkpoint {!truncate}s the log.
    Appends serialize under a mutex but the fsync runs outside it —
    commits that find a sync in flight piggyback on the next one
    (group commit, counted by [wal.group_commits]).

    Fault injection: the [wal.append.crash] site tears a record
    mid-write; [wal.fsync.crash] drops the un-fsynced tail (the bytes a
    power cut would lose).  Either poisons the log — further commits
    raise — modelling a dead process; recovery is reopening from disk. *)

type op =
  | Insert of string * Bytes.t
      (** target relation, schema-directed [Codec.encode_tuple] bytes *)
  | Delete of string * Value.t list  (** target relation, key values *)
  | Clear of string

type t

val create : string -> t
(** Create (or truncate) the log file and write the magic header. *)

val path : t -> string

val commit : t -> op list -> unit
(** Append one transaction's record and return once an fsync covers it.
    @raise Errors.Io_error on an injected crash; the commit did not
    happen and the log refuses further commits until reopened. *)

val replay : string -> apply:(op list -> unit) -> int
(** Apply every intact committed record in order; a torn or corrupt
    tail ends replay silently, a missing file replays nothing.  Returns
    the number of transactions applied.
    @raise Errors.Corruption on a damaged header or out-of-order
    commit sequence (not mere tail damage). *)

val truncate : t -> unit
(** Reset to empty after a checkpoint made the log's effects durable in
    the snapshot. *)

val close : t -> unit
