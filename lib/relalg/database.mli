(** Databases: catalogs of named relations and enumeration types, with
    reference dereferencing (the postfix [@] of paper Section 3.1). *)

type t

val create : unit -> t

val add_relation : t -> Relation.t -> unit
(** @raise Errors.Schema_error on anonymous or duplicate names. *)

val declare_relation : t -> name:string -> Schema.t -> Relation.t

val find_relation : t -> string -> Relation.t
(** @raise Errors.Unknown_relation *)

val find_relation_opt : t -> string -> Relation.t option
val mem_relation : t -> string -> bool
val relation_names : t -> string list
val relations : t -> Relation.t list

val declare_enum : t -> string -> string array -> Value.enum_info
val find_enum : t -> string -> Value.enum_info
val find_enum_opt : t -> string -> Value.enum_info option
val enums : t -> Value.enum_info list

val register_index : t -> string -> on:string -> Index.t
(** Build and register a permanent index on one component (Example 3.1's
    [enrindex]); costs one counted scan.  Must be {!refresh_indexes}'d
    after updates to the base relation. *)

val permanent_index : t -> string -> on:string -> Index.t option
val refresh_indexes : t -> unit
val permanent_index_list : t -> (string * string) list

val deref : t -> Value.reference -> Tuple.t
(** Regain the selected variable from a reference.
    @raise Errors.Dangling_reference if the element is gone. *)

val deref_value : t -> Value.t -> Tuple.t

val attach_storage : t -> pool_pages:int -> Buffer_pool.t
(** Attach paged storage to every relation, sharing one buffer pool of
    the given capacity (in pages); returns the pool for statistics. *)

val stats_epoch : t -> int
(** A number that changes whenever the catalogued data does: the sum of
    every relation's content {!Relation.version} plus a catalog version
    bumped on relation declaration.  Plan caches key on it — inserts,
    deletes, clears and snapshot loads all move the epoch, invalidating
    plans whose cost ordering or empty-range adaptation assumed the old
    cardinalities.  Monotone for any fixed database. *)

val reset_counters : t -> unit
(** Reset {e all} measurement state in one call: every relation's
    scan/probe counters, every permanent index's probe counter, and the
    stats of every attached buffer pool. *)

val total_scans : t -> int
val total_probes : t -> int

val pool_stats : t -> Buffer_pool.stats option
(** Combined stats of the distinct buffer pools attached to this
    database's relations; [None] when no paged storage is attached. *)

val pp : t Fmt.t

(** {2 Durable snapshots} *)

val snapshot_bytes : t -> Bytes.t
(** The deterministic single-file snapshot encoding (magic, enums,
    relations with schemas and tuples in sorted order, permanent index
    registrations, trailing Adler-32).  Saving the same logical database
    twice yields byte-identical output. *)

val save : t -> path:string -> unit
(** Atomically persist the snapshot: write [path ^ ".tmp"], fsync,
    rename over [path].  Consults the [db.save.crash] failpoint at two
    crash points (mid-write and pre-rename); in both cases the
    previously committed snapshot at [path] is left untouched.
    @raise Errors.Io_error on an injected crash. *)

val load : path:string -> t
(** Rebuild a database from a snapshot, re-registering permanent
    indexes.  @raise Errors.Corruption on bad magic, checksum mismatch
    or truncated content. *)
