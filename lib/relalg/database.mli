(** Databases: catalogs of named relations and enumeration types, with
    reference dereferencing (the postfix [@] of paper Section 3.1). *)

type t

val create : unit -> t

val add_relation : t -> Relation.t -> unit
(** @raise Errors.Schema_error on anonymous or duplicate names. *)

val declare_relation : t -> name:string -> Schema.t -> Relation.t

val find_relation : t -> string -> Relation.t
(** @raise Errors.Unknown_relation *)

val find_relation_opt : t -> string -> Relation.t option
val mem_relation : t -> string -> bool
val relation_names : t -> string list
val relations : t -> Relation.t list

val declare_enum : t -> string -> string array -> Value.enum_info
val find_enum : t -> string -> Value.enum_info
val find_enum_opt : t -> string -> Value.enum_info option
val enums : t -> Value.enum_info list

val register_index : t -> string -> on:string -> Index.t
(** Build and register a permanent index on one component (Example 3.1's
    [enrindex]); costs one counted scan.  Must be {!refresh_indexes}'d
    after updates to the base relation. *)

val permanent_index : t -> string -> on:string -> Index.t option
val refresh_indexes : t -> unit
val permanent_index_list : t -> (string * string) list

val declare_index :
  ?kind:Secondary_index.kind -> t -> string -> on:string list -> Secondary_index.t
(** Declare a persistent secondary index (default [Hash]) on the named
    relation's component list; built by one counted scan and from then
    on maintained incrementally through every mutation — direct handle
    writes, transaction copies (which clone the index on first write
    and install the clone at commit), and WAL replay.  Persisted by
    {!save} as checksummed pages.
    @raise Errors.Schema_error on a duplicate component list.
    @raise Errors.Unknown_relation *)

val secondary_indexes : t -> string -> Secondary_index.t list
(** All secondary indexes declared on the named relation. *)

val secondary_on : t -> string -> string -> Secondary_index.t list
(** [secondary_on db rel attr]: the single-component indexes over
    [attr], range-capable ([Sorted]) first. *)

val secondary_index_list : t -> (string * string list * Secondary_index.kind) list
(** Every declaration, sorted — the catalog the snapshot persists. *)

val deref : t -> Value.reference -> Tuple.t
(** Regain the selected variable from a reference.
    @raise Errors.Dangling_reference if the element is gone. *)

val deref_value : t -> Value.t -> Tuple.t

val attach_storage : t -> pool_pages:int -> Buffer_pool.t
(** Attach paged storage to every relation, sharing one buffer pool of
    the given capacity (in pages); returns the pool for statistics. *)

val stats_epoch : t -> int
(** A number that changes whenever the catalogued data does: the sum of
    every relation's content {!Relation.version} plus a catalog version
    bumped on relation declaration.  Plan caches key on it — inserts,
    deletes, clears and snapshot loads all move the epoch, invalidating
    plans whose cost ordering or empty-range adaptation assumed the old
    cardinalities.  Monotone for any fixed database. *)

val reset_counters : t -> unit
(** Reset {e all} measurement state in one call: every relation's
    scan/probe counters, every permanent index's probe counter, and the
    stats of every attached buffer pool. *)

val total_scans : t -> int
val total_probes : t -> int

val pool_stats : t -> Buffer_pool.stats option
(** Combined stats of the distinct buffer pools attached to this
    database's relations; [None] when no paged storage is attached. *)

val pp : t Fmt.t

(** {2 Durable snapshots} *)

val snapshot_bytes : t -> Bytes.t
(** The deterministic single-file snapshot encoding (magic, enums,
    relations with schemas and tuples in sorted order, permanent index
    registrations, trailing Adler-32).  Saving the same logical database
    twice yields byte-identical output. *)

val save : t -> path:string -> unit
(** Atomically persist the snapshot: write [path ^ ".tmp"], fsync,
    rename over [path].  Consults the [db.save.crash] failpoint at two
    crash points (mid-write and pre-rename); in both cases the
    previously committed snapshot at [path] is left untouched.
    @raise Errors.Io_error on an injected crash. *)

val load : path:string -> t
(** Rebuild a database from a snapshot, re-registering permanent
    indexes.  @raise Errors.Corruption on bad magic, checksum mismatch
    or truncated content. *)

(** {2 Snapshot-isolated transactions}

    MVCC at relation granularity: a transaction pins a snapshot — a
    facade database sharing the committed {!Relation.t} handles at one
    commit point — and a write transaction works on private copies that
    commit installs atomically, with first-committer-wins conflict
    detection.  Pins and installs synchronize on the store's internal
    lock, so transactions from concurrent domains are safe; one
    transaction value itself is single-domain. *)

module Txn : sig
  type db := t

  type kind = Read | Write
  type state = Open | Committed | Aborted
  type t

  val view : t -> db
  (** The pinned snapshot: every relation at one commit point, plus this
      transaction's own uncommitted writes.  Run any executor against
      it; do not mutate it directly. *)

  val kind : t -> kind
  val state : t -> state

  val insert : t -> string -> Tuple.t -> unit
  (** Buffer an insertion into the named relation: applied to the
      transaction's private copy now, logged and installed at commit.
      @raise Errors.Duplicate_key / Errors.Type_error as
      {!Relation.insert} (the transaction stays open).
      @raise Invalid_argument on a read-only or closed transaction
      (all three mutators do). *)

  val delete_key : t -> string -> Value.t list -> unit
  val clear : t -> string -> unit

  val commit : t -> unit
  (** Make the write set durable (WAL append + fsync, when attached) and
      install it.  @raise Errors.Txn_conflict if a concurrent
      transaction committed first to a written relation (this
      transaction is aborted; retry on a fresh snapshot).
      @raise Errors.Io_error if an injected WAL crash lost the record. *)

  val abort : t -> unit
  (** Drop the write set.  Idempotent; a no-op on closed transactions. *)
end

val begin_read : t -> Txn.t
val begin_write : t -> Txn.t

val with_read : t -> (Txn.t -> 'a) -> 'a
(** Run [f] against a pinned snapshot; commits (a no-op for reads) on
    return, aborts if [f] raises. *)

val with_write : t -> (Txn.t -> 'a) -> 'a
(** Run [f] in a write transaction and commit on return (unless [f]
    already committed or aborted); aborts and re-raises if [f] raises. *)

(** {2 Write-ahead logging}

    [attach_wal db ~path] snapshots the database to [path], opens a WAL
    at [path ^ ".wal"] and freezes the committed relation states: from
    then on all content mutation must go through write transactions,
    whose operations are appended (group commit) and fsynced before
    installation.  A checkpoint saves a fresh snapshot and truncates
    the log; {!open_durable} is crash recovery. *)

val attach_wal : t -> path:string -> unit
(** @raise Errors.Io_error if a WAL is already attached (or via the
    [db.save.crash] failpoint during the initial snapshot). *)

val open_durable : path:string -> t
(** Load the snapshot at [path], replay the intact records of
    [path ^ ".wal"] on top (upsert semantics — idempotent over a
    checkpoint that crashed before truncating), checkpoint, and return
    the database with the WAL attached. *)

val checkpoint : t -> unit
(** Save the current committed state and truncate the WAL.  Waits out
    in-flight commits.  Consults the [wal.checkpoint.crash] failpoint at
    two crash points (before the snapshot and before the truncation);
    recovery is correct after either.  @raise Errors.Io_error *)

val close : t -> unit
(** Checkpoint and close the WAL; subsequent write commits fail. *)

val wal_attached : t -> bool
val durable : t -> bool
