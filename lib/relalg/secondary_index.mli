(** Persistent secondary indexes: catalogued access paths, maintained
    incrementally through relation mutations, copied on write by MVCC
    transactions, and persisted in database snapshots as checksummed
    pages.

    [Hash] serves equality probes; [Sorted] additionally serves range
    restrictions by binary search over a lazily rebuilt sorted view and
    reports exact matching fractions for the cost model. *)

type kind = Hash | Sorted

val kind_to_string : kind -> string

val kind_of_string : string -> kind
(** @raise Errors.Type_error on an unknown kind name. *)

type t

val create : kind:kind -> Relation.t -> on:string list -> t
(** An empty index over [on] components of the relation.
    @raise Errors.Unknown_attribute if a component is not in the schema.
    @raise Errors.Schema_error if [on] is empty. *)

val build : kind:kind -> Relation.t -> on:string list -> t
(** Build by one counted scan of the source relation. *)

val of_tuples : kind:kind -> Relation.t -> on:string list -> Tuple.t list -> t
(** Rebuild from persisted snapshot pages; no relation scan. *)

val copy : t -> t
(** MVCC copy-on-write: a private index sharing all bucket spines with
    the original.  Probe counters start at zero. *)

val source : t -> string
val on : t -> string list
val kind : t -> kind
val entry_count : t -> int
val distinct_keys : t -> int
val probe_count : t -> int
val reset_counters : t -> unit

val on_insert : t -> Tuple.t -> unit
(** Incremental maintenance hooks, fed by {!Relation} observers. *)

val on_delete : t -> Tuple.t -> unit
val on_clear : t -> unit

val probe : t -> Value.t list -> Tuple.t list
(** Equality probe by component values; counted. *)

val probe1 : t -> Value.t -> Tuple.t list

val iter_matching : t -> Value.comparison -> Value.t -> (Tuple.t -> unit) -> unit
(** Enumerate tuples whose (single) indexed component satisfies
    [value op v].  Equality probes the bucket table; order comparisons
    binary-search the sorted view and count as one range probe.
    @raise Errors.Type_error on an order probe of a multi-component
    index. *)

val matching_fraction : t -> Value.comparison -> Value.t -> float
(** Exact fraction of indexed tuples matching [op v] — O(1) for
    equality, O(log n) for order comparisons.  Uncounted (planning). *)

val to_list : t -> Tuple.t list
(** All indexed tuples, sorted: the deterministic page enumeration the
    snapshot serializer persists. *)

val consistent_with : t -> Relation.t -> bool
(** Every indexed tuple is in the relation under the right key and
    every relation tuple is indexed; cardinalities agree. *)
