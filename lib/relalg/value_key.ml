(* Hash tables keyed by value lists — shared by relations, indexes and
   the hash-join implementation. *)

module Table = Hashtbl.Make (struct
  type t = Value.t list

  let equal = List.equal Value.equal
  let hash k = List.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 k
end)

type 'a table = 'a Table.t

let create n : 'a table = Table.create n

(* Multimap helper: cons onto the bucket for [k]. *)
let add_multi (tbl : 'a list table) k v =
  match Table.find_opt tbl k with
  | None -> Table.replace tbl k [ v ]
  | Some vs -> Table.replace tbl k (v :: vs)

let find_multi (tbl : 'a list table) k =
  Option.value (Table.find_opt tbl k) ~default:[]

(* Tables keyed by value ARRAYS — the join hot path.  A projected tuple
   already is a [Value.t array], so keying on the array directly avoids
   the per-probe [Array.to_list] allocation of the list-keyed table. *)
module Atable = Hashtbl.Make (struct
  type t = Value.t array

  let equal a b =
    Array.length a = Array.length b
    &&
    let rec go i = i >= Array.length a || (Value.equal a.(i) b.(i) && go (i + 1)) in
    go 0

  let hash k = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 k
end)

type 'a atable = 'a Atable.t

let acreate n : 'a atable = Atable.create n

let add_multi_a (tbl : 'a list atable) k v =
  match Atable.find_opt tbl k with
  | None -> Atable.replace tbl k [ v ]
  | Some vs -> Atable.replace tbl k (v :: vs)

let find_multi_a (tbl : 'a list atable) k =
  Option.value (Atable.find_opt tbl k) ~default:[]
