(** Tuples: flat value arrays interpreted against a {!Schema.t}. *)

type t = Value.t array

val of_list : Value.t list -> t
val to_list : t -> Value.t list
val arity : t -> int
val get : t -> int -> Value.t

val get_by_name : Schema.t -> t -> string -> Value.t
(** @raise Errors.Unknown_attribute *)

val compare : t -> t -> int
(** Lexicographic; shorter tuples order first. *)

val equal : t -> t -> bool
val hash : t -> int

val project : int array -> t -> t
val project_names : Schema.t -> string list -> t -> t
val concat : t -> t -> t

val concat_project : t -> int array -> t -> t
(** [concat_project a positions b] is
    [concat a (project positions b)] in a single allocation. *)

val key_of : Schema.t -> t -> Value.t list
(** The tuple's key values under the schema's declared key. *)

val well_typed : Schema.t -> t -> bool

val pp : t Fmt.t
val to_string : t -> string
