(* Write-ahead log: incremental group-commit durability between
   [Database.save] checkpoints.

   The snapshot file written by [Database.save] is atomic but monolithic
   — every commit would have to rewrite the whole database.  The WAL
   turns that into an append: a committed transaction's logical
   operations are encoded through [Codec] into one checksummed record,
   appended and fsynced before the in-memory install.  On open, the log
   is replayed on top of the last snapshot; a checkpoint (= snapshot
   save) truncates it.

   Record framing (after the 11-byte file magic):

     i64 payload length | payload | i64 Adler-32 of payload

   and the payload is

     i64 commit sequence | u16 op count | ops

   with each op one of

     'I' relname  tuple-bytes     (schema-directed [Codec.encode_tuple])
     'D' relname  u16 n  values   (self-described key values)
     'C' relname                  (clear)

   A torn tail — a record cut short by a crash, or whose checksum does
   not match — ends replay at the last intact record, exactly the
   semantics of losing un-fsynced bytes.  Group commit: appends are
   serialized under a mutex, but the fsync happens outside it; a commit
   that finds a sync already in flight waits on a condition variable and
   piggybacks on the next one, so one fsync can make many commits
   durable ([wal.group_commits] counts the saved fsyncs).

   Fault injection: [wal.append.crash] tears the record mid-write and
   poisons the log; [wal.fsync.crash] drops the un-fsynced tail (the
   bytes a real power cut would lose) and poisons the log.  A poisoned
   log refuses further commits — the process is considered dead; tests
   reopen from disk and verify recovery. *)

type op =
  | Insert of string * Bytes.t  (* relation name, Codec.encode_tuple bytes *)
  | Delete of string * Value.t list
  | Clear of string

type t = {
  path : string;
  fd : Unix.file_descr;
  mu : Mutex.t;
  cond : Condition.t;
  mutable appended : int;  (* commit seq of the last appended record *)
  mutable synced : int;  (* commit seq covered by the last fsync *)
  mutable syncing : bool;  (* one domain is inside fsync *)
  mutable off : int;  (* file length = end of last appended record *)
  mutable synced_off : int;  (* file length covered by the last fsync *)
  mutable poisoned : bool;  (* an injected crash tore the tail *)
  mutable closed : bool;
}

let magic = "PASCALRWAL1"
let header_len = String.length magic

let rec write_all fd b pos len =
  if len > 0 then begin
    let n = Unix.write fd b pos len in
    write_all fd b (pos + n) (len - n)
  end

let create path =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  write_all fd (Bytes.of_string magic) 0 header_len;
  (try Unix.fsync fd with Unix.Unix_error _ -> ());
  {
    path;
    fd;
    mu = Mutex.create ();
    cond = Condition.create ();
    appended = 0;
    synced = 0;
    syncing = false;
    off = header_len;
    synced_off = header_len;
    poisoned = false;
    closed = false;
  }

let path t = t.path

let encode_op buf = function
  | Insert (rel, tup) ->
    Buffer.add_char buf 'I';
    Codec.put_string buf rel;
    Codec.put_string buf (Bytes.to_string tup)
  | Delete (rel, key) ->
    Buffer.add_char buf 'D';
    Codec.put_string buf rel;
    Codec.put_u16 buf (List.length key);
    List.iter (Codec.put_value buf) key
  | Clear rel ->
    Buffer.add_char buf 'C';
    Codec.put_string buf rel

let encode_record ~seq ops =
  let payload = Buffer.create 256 in
  Codec.put_i64 payload seq;
  Codec.put_u16 payload (List.length ops);
  List.iter (encode_op payload) ops;
  let payload = Buffer.to_bytes payload in
  let plen = Bytes.length payload in
  let rcd = Buffer.create (plen + 16) in
  Codec.put_i64 rcd plen;
  Buffer.add_bytes rcd payload;
  Codec.put_i64 rcd (Codec.adler32 payload ~pos:0 ~len:plen);
  Buffer.to_bytes rcd

(* Drop the un-fsynced tail, as a power cut would, and refuse further
   commits.  Called with [t.mu] held. *)
let drop_unsynced_tail t =
  t.poisoned <- true;
  (try
     Unix.ftruncate t.fd t.synced_off;
     ignore (Unix.lseek t.fd t.synced_off Unix.SEEK_SET)
   with Unix.Unix_error _ -> ());
  t.off <- t.synced_off;
  t.appended <- t.synced;
  Condition.broadcast t.cond

let check_usable t =
  if t.closed then Errors.io_error "wal %s is closed" t.path;
  if t.poisoned then
    Errors.io_error "wal %s: torn tail after injected crash; reopen to recover"
      t.path

(* Append the record and make it durable; returns only once an fsync
   covering the record has completed.  @raise Errors.Io_error on an
   injected crash (the commit did not happen; the log is poisoned). *)
let commit t ops =
  Mutex.lock t.mu;
  (try
     check_usable t;
     let rcd = encode_record ~seq:(t.appended + 1) ops in
     if Failpoint.should_fire "wal.append.crash" then begin
       (* Torn write: half the record reaches the file, then the
          process "dies".  Replay must stop at the previous record. *)
       (try write_all t.fd rcd 0 (Bytes.length rcd / 2)
        with Unix.Unix_error _ -> ());
       t.poisoned <- true;
       Condition.broadcast t.cond;
       Obs.Metrics.incr "wal.append_crashes";
       Errors.io_error "wal.append.crash: torn record in %s" t.path
     end;
     write_all t.fd rcd 0 (Bytes.length rcd);
     t.appended <- t.appended + 1;
     t.off <- t.off + Bytes.length rcd;
     Obs.Metrics.incr "wal.appends";
     Obs.Metrics.incr ~by:(Bytes.length rcd) "wal.bytes"
   with e ->
     Mutex.unlock t.mu;
     raise e);
  let my = t.appended in
  (* Group fsync: either piggyback on a sync in flight or run one. *)
  let rec ensure_synced () =
    if t.synced >= my then ()
    else if t.poisoned then begin
      (* A concurrent commit crashed; our record was in the dropped
         tail.  The commit did not happen. *)
      Mutex.unlock t.mu;
      Errors.io_error "wal %s: commit lost to a concurrent injected crash"
        t.path
    end
    else if t.syncing then begin
      Condition.wait t.cond t.mu;
      ensure_synced ()
    end
    else begin
      t.syncing <- true;
      let upto = t.appended and upto_off = t.off in
      Mutex.unlock t.mu;
      let outcome =
        if Failpoint.should_fire "wal.fsync.crash" then `Crash
        else begin
          let t0 = Unix.gettimeofday () in
          (try Unix.fsync t.fd with Unix.Unix_error _ -> ());
          Obs.Metrics.observe "wal.fsync_ms"
            ((Unix.gettimeofday () -. t0) *. 1000.);
          Obs.Metrics.incr "wal.fsyncs";
          `Ok
        end
      in
      Mutex.lock t.mu;
      t.syncing <- false;
      match outcome with
      | `Ok ->
        if upto - t.synced > 1 then Obs.Metrics.incr "wal.group_commits";
        t.synced <- max t.synced upto;
        t.synced_off <- max t.synced_off upto_off;
        Condition.broadcast t.cond;
        ensure_synced ()
      | `Crash ->
        (* The un-fsynced bytes never reached the platter. *)
        drop_unsynced_tail t;
        Obs.Metrics.incr "wal.fsync_crashes";
        Mutex.unlock t.mu;
        Errors.io_error "wal.fsync.crash: lost un-fsynced tail of %s" t.path
    end
  in
  ensure_synced ();
  Mutex.unlock t.mu;
  Obs.Metrics.incr "wal.commits"

let decode_ops payload =
  let cur = Codec.cursor payload in
  let seq = Codec.get_i64 cur in
  let nops = Codec.get_u16 cur in
  let ops =
    List.init nops (fun _ ->
        match Char.chr (Codec.get_u8 cur) with
        | 'I' ->
          let rel = Codec.get_string cur in
          let tup = Bytes.of_string (Codec.get_string cur) in
          Insert (rel, tup)
        | 'D' ->
          let rel = Codec.get_string cur in
          let n = Codec.get_u16 cur in
          let key = List.init n (fun _ -> Codec.get_value cur) in
          Delete (rel, key)
        | 'C' -> Clear (Codec.get_string cur)
        | c -> Errors.corruption "wal: unknown op tag %C" c)
  in
  if cur.Codec.pos <> Bytes.length payload then
    Errors.corruption "wal: %d trailing payload bytes"
      (Bytes.length payload - cur.Codec.pos);
  (seq, ops)

(* Replay every intact committed record in order.  A torn or corrupt
   tail ends replay silently (those commits never became durable); a
   missing file replays nothing.  Returns the number of transactions
   applied. *)
let replay path ~apply =
  if not (Sys.file_exists path) then 0
  else begin
    let data =
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let b = Bytes.create n in
      really_input ic b 0 n;
      close_in ic;
      b
    in
    let len = Bytes.length data in
    if len < header_len || Bytes.sub_string data 0 header_len <> magic then
      Errors.corruption "wal %s: bad magic" path;
    let pos = ref header_len in
    let applied = ref 0 in
    let expect = ref 1 in
    let intact = ref true in
    while !intact && !pos + 16 <= len do
      let cur = Codec.cursor data in
      cur.Codec.pos <- !pos;
      let plen = Codec.get_i64 cur in
      if plen < 0 || cur.Codec.pos + plen + 8 > len then intact := false
      else begin
        let payload = Bytes.sub data cur.Codec.pos plen in
        let stored =
          cur.Codec.pos <- cur.Codec.pos + plen;
          Codec.get_i64 cur
        in
        if stored <> Codec.adler32 payload ~pos:0 ~len:plen then
          intact := false
        else
          match decode_ops payload with
          | seq, ops ->
            if seq <> !expect then
              Errors.corruption "wal %s: commit %d where %d expected" path
                seq !expect;
            incr expect;
            apply ops;
            incr applied;
            Obs.Metrics.incr "wal.replayed_txns";
            pos := cur.Codec.pos
          | exception Errors.Corruption _ -> intact := false
      end
    done;
    !applied
  end

(* Checkpoint: everything up to here is in the snapshot; start over. *)
let truncate t =
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () ->
      check_usable t;
      Unix.ftruncate t.fd header_len;
      ignore (Unix.lseek t.fd header_len Unix.SEEK_SET);
      (try Unix.fsync t.fd with Unix.Unix_error _ -> ());
      t.off <- header_len;
      t.synced_off <- header_len;
      t.appended <- 0;
      t.synced <- 0;
      Obs.Metrics.incr "wal.truncations")

let close t =
  Mutex.lock t.mu;
  if not t.closed then begin
    t.closed <- true;
    (try Unix.close t.fd with Unix.Unix_error _ -> ())
  end;
  Mutex.unlock t.mu
