(** Binary tuple encoding for the paged storage layer.  Schema-directed:
    enumerations are stored as ordinals and reconstructed from the
    schema; reference values are self-described.

    All decoding is bounds-checked: damaged bytes (truncation, unknown
    tags) raise {!Errors.Corruption} rather than crashing, so the
    storage layer above can invalidate and rebuild. *)

val encode_tuple : Schema.t -> Tuple.t -> Bytes.t

val decode_tuple : Schema.t -> Bytes.t -> Tuple.t
(** Consults the [codec.decode.corrupt] failpoint.
    @raise Errors.Corruption on undecodable bytes. *)

val put_value : Buffer.t -> Value.t -> unit
(** Self-described single-value encoding (as used inside references). *)

(** {2 Primitives}

    Shared by the heap file's page layout and the database snapshot
    format. *)

val put_u16 : Buffer.t -> int -> unit
(** @raise Errors.Type_error if out of [0, 0xFFFF]. *)

val put_i64 : Buffer.t -> int -> unit
val put_string : Buffer.t -> string -> unit

type cursor = { bytes : Bytes.t; mutable pos : int }

val cursor : Bytes.t -> cursor

val get_u8 : cursor -> int
(** All cursor reads: @raise Errors.Corruption on truncated input. *)

val get_u16 : cursor -> int
val get_i64 : cursor -> int
val get_string : cursor -> string

val get_value : cursor -> Value.t
(** Decoded enum values carry only their enumeration name and ordinal
    (empty label table) — sufficient for equality and ordering. *)

val adler32 : Bytes.t -> pos:int -> len:int -> int
(** Adler-32 of a byte range: the checksum word stored in heap pages
    and at the tail of database snapshots. *)
