(* Runtime values of the PASCAL/R data model.

   A value is an integer (possibly from a subrange type), a string
   (PACKED ARRAY OF char), a boolean, an ordinal of a named enumeration
   (Figure 1 of the paper declares several: statustype, leveltype, ...),
   or a *reference* to an element of a named relation, identified by the
   target relation's name and the element's key values.  References are
   the paper's [@rel[keyval]] construct (Section 3.1) and appear as
   components of the intermediate relations of Section 3.2. *)

type enum_info = { enum_name : string; labels : string array }

type t =
  | VInt of int
  | VStr of string
  | VBool of bool
  | VEnum of enum_info * int
  | VRef of reference

and reference = { target : string; key : t list }

type comparison = Eq | Ne | Lt | Le | Gt | Ge

let all_comparisons = [ Eq; Ne; Lt; Le; Gt; Ge ]

let comparison_to_string = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

(* Negation of a comparison: NOT (x op y) = x (negate op) y.  Used when
   pushing NOT down to atoms during normalization. *)
let negate_comparison = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt

(* Mirror of a comparison: x op y = y (flip op) x.  Used to orient dyadic
   join terms so that a chosen variable appears on the left. *)
let flip_comparison = function
  | Eq -> Eq
  | Ne -> Ne
  | Lt -> Gt
  | Le -> Ge
  | Gt -> Lt
  | Ge -> Le

let type_name = function
  | VInt _ -> "integer"
  | VStr _ -> "string"
  | VBool _ -> "boolean"
  | VEnum (info, _) -> info.enum_name
  | VRef r -> "@" ^ r.target

(* Total order on values of the same domain.  Booleans order false < true,
   enums by ordinal, references lexicographically by (target, key) — the
   latter matters only for deterministic iteration, not for user queries. *)
let rec compare a b =
  match a, b with
  | VInt x, VInt y -> Int.compare x y
  | VStr x, VStr y -> String.compare x y
  | VBool x, VBool y -> Bool.compare x y
  | VEnum (ia, x), VEnum (ib, y) ->
    if String.equal ia.enum_name ib.enum_name then Int.compare x y
    else
      Errors.type_error "cannot compare enum %s with enum %s" ia.enum_name
        ib.enum_name
  | VRef x, VRef y ->
    let c = String.compare x.target y.target in
    if c <> 0 then c else compare_list x.key y.key
  | (VInt _ | VStr _ | VBool _ | VEnum _ | VRef _), _ ->
    Errors.type_error "cannot compare %s with %s" (type_name a) (type_name b)

and compare_list xs ys =
  match xs, ys with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs', y :: ys' ->
    let c = compare x y in
    if c <> 0 then c else compare_list xs' ys'

let equal a b = compare a b = 0

(* Apply a comparison operator.  This is the semantics of a join term's
   operator (paper Section 2: "Any of the comparison operators =, <>, <,
   <=, >, >= may be used"). *)
let apply op a b =
  let c = compare a b in
  match op with
  | Eq -> c = 0
  | Ne -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let rec pp ppf = function
  | VInt n -> Fmt.int ppf n
  | VStr s -> Fmt.pf ppf "'%s'" s
  | VBool b -> Fmt.bool ppf b
  | VEnum (info, i) ->
    if i >= 0 && i < Array.length info.labels then
      Fmt.string ppf info.labels.(i)
    else Fmt.pf ppf "%s#%d" info.enum_name i
  | VRef r -> Fmt.pf ppf "@%s[%a]" r.target (Fmt.list ~sep:Fmt.comma pp) r.key

let to_string v = Fmt.str "%a" pp v

(* Structural hash compatible with [equal].  The polymorphic hash would
   also hash the label arrays of enum infos; this one hashes only the
   identifying parts.  Values are hashed per probe on every
   join/dedup/insert hot path, so no case may allocate: each variant
   mixes a distinct constant in arithmetically instead of boxing a
   tagged tuple for [Hashtbl.hash]. *)
let rec hash = function
  | VInt n -> Hashtbl.hash n lxor 0x1fb218
  | VStr s -> Hashtbl.hash s lxor 0x2e5a99
  | VBool b -> if b then 0x633d5 else 0x9e379
  | VEnum (info, i) -> ((Hashtbl.hash info.enum_name * 31) + i) lxor 0x3c6ef3
  | VRef r ->
    List.fold_left
      (fun acc v -> (acc * 31) + hash v)
      (Hashtbl.hash r.target lxor 0x4d2fa1)
      r.key

(* Convenience constructors used pervasively in tests and examples. *)
let int n = VInt n
let str s = VStr s
let bool b = VBool b

let enum info label =
  let rec find i =
    if i >= Array.length info.labels then
      Errors.type_error "enum %s has no label %s" info.enum_name label
    else if String.equal info.labels.(i) label then VEnum (info, i)
    else find (i + 1)
  in
  find 0

let enum_ordinal info i =
  if i < 0 || i >= Array.length info.labels then
    Errors.type_error "enum %s has no ordinal %d" info.enum_name i
  else VEnum (info, i)
