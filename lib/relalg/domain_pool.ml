(* Lazily-spawned pool of worker domains, reused across queries and
   joinable via [shutdown].  See the .mli for the caller contract
   (snapshots in, private results out, metrics deltas merged at the
   join, lowest-index exception wins). *)

type par = { jobs : int; threshold : int }

let active par n =
  match par with
  | Some p when p.jobs > 1 && n >= p.threshold -> Some p
  | Some _ | None -> None

(* ---- the pool ------------------------------------------------------ *)

type job = Job of (unit -> unit) | Quit

let lock = Mutex.create ()
let work_available = Condition.create ()
let queue : job Queue.t = Queue.create ()
let workers = ref 0
let spawned_total = ref 0
let handles : unit Domain.t list ref = ref []

let spawned_domains () =
  Mutex.lock lock;
  let n = !spawned_total in
  Mutex.unlock lock;
  n

(* Set on worker domains: a task that itself reaches a parallel entry
   point must run it inline — the pool has no spare capacity to offer
   and waiting on it from inside a worker could deadlock. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let worker_loop () =
  Domain.DLS.set in_worker true;
  let rec loop () =
    Mutex.lock lock;
    while Queue.is_empty queue do
      Condition.wait work_available lock
    done;
    let job = Queue.pop queue in
    Mutex.unlock lock;
    match job with
    | Quit -> ()
    | Job f ->
      (* Jobs are wrapped by [run_tasks] and never raise; the catch-all
         only shields the pool from a bug in the wrapper itself. *)
      (try f () with _ -> ());
      loop ()
  in
  loop ()

(* Grow the pool to [n] workers.  Between queries workers park on
   [work_available]; idle blocked domains do not delay process exit, but
   they do tax every stop-the-world section, which is what [shutdown]
   exists to undo. *)
let ensure_workers n =
  Mutex.lock lock;
  while !workers < n do
    incr workers;
    incr spawned_total;
    handles := Domain.spawn worker_loop :: !handles
  done;
  Mutex.unlock lock

let submit job =
  Mutex.lock lock;
  Queue.push (Job job) queue;
  Condition.signal work_available;
  Mutex.unlock lock

(* Quiesce the pool: one poison pill per worker (the queue is FIFO, so
   pending jobs drain first), then join every worker domain.  Must be
   called from outside the pool with no [run_tasks] in flight; the next
   parallel call after a shutdown lazily respawns a fresh pool. *)
let shutdown () =
  Mutex.lock lock;
  let joinable = !handles in
  for _ = 1 to !workers do
    Queue.push Quit queue
  done;
  workers := 0;
  handles := [];
  Condition.broadcast work_available;
  Mutex.unlock lock;
  List.iter Domain.join joinable

(* ---- fork/join over indexed tasks ---------------------------------- *)

let run_serial n f =
  for i = 0 to n - 1 do
    f i
  done

let run_tasks ~jobs n f =
  if jobs <= 1 || n <= 1 || Domain.DLS.get in_worker then run_serial n f
  else begin
    let helpers = min (jobs - 1) (n - 1) in
    ensure_workers helpers;
    Obs.Metrics.incr ~by:n "parallel.tasks";
    (* Dynamic distribution: every participant (caller included) pulls
       the next task index until none remain.  Which domain runs which
       task varies; nothing downstream can tell, because results land
       in per-task slots and are combined in index order. *)
    let next = Atomic.make 0 in
    let failures :
        (exn * Printexc.raw_backtrace) option array =
      Array.make n None
    in
    let deltas : Obs.Metrics.snapshot array = Array.make n [] in
    let join_lock = Mutex.create () in
    let all_done = Condition.create () in
    let busy_helpers = ref helpers in
    let drain_as_worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (* Bracket the task with registry snapshots: everything it
             incremented in this worker's private registry travels back
             to the caller as deltas.(i). *)
          let before = Obs.Metrics.snapshot () in
          (try f i
           with e -> failures.(i) <- Some (e, Printexc.get_raw_backtrace ()));
          deltas.(i) <- Obs.Metrics.diff ~before ~after:(Obs.Metrics.snapshot ());
          go ()
        end
      in
      go ();
      Mutex.lock join_lock;
      decr busy_helpers;
      if !busy_helpers = 0 then Condition.signal all_done;
      Mutex.unlock join_lock
    in
    for _ = 1 to helpers do
      submit drain_as_worker
    done;
    (* The caller drains too — its increments already target the main
       registry, so no delta bracketing. *)
    let rec go () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (try f i
         with e -> failures.(i) <- Some (e, Printexc.get_raw_backtrace ()));
        go ()
      end
    in
    go ();
    Mutex.lock join_lock;
    while !busy_helpers > 0 do
      Condition.wait all_done join_lock
    done;
    Mutex.unlock join_lock;
    Array.iter (fun d -> if d <> [] then Obs.Metrics.merge d) deltas;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      failures
  end

let parallel_map ~jobs f arr =
  let n = Array.length arr in
  if jobs <= 1 || n <= 1 then Array.map f arr
  else begin
    let out = Array.make n None in
    run_tasks ~jobs n (fun i -> out.(i) <- Some (f arr.(i)));
    Array.map (function Some v -> v | None -> assert false) out
  end

let chunk ~pieces arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let k = max 1 (min pieces n) in
    Array.init k (fun i ->
        let lo = i * n / k and hi = (i + 1) * n / k in
        Array.sub arr lo (hi - lo))
  end

let parallel_chunks ~jobs arr f =
  let cs = chunk ~pieces:jobs arr in
  if Array.length cs > 1 then
    Obs.Metrics.incr ~by:(Array.length cs) "parallel.chunks";
  Array.to_list
    (parallel_map ~jobs (fun (i, c) -> f i c) (Array.mapi (fun i c -> (i, c)) cs))
