(* A buffer pool over the paged heap files: a fixed number of frames
   with LRU replacement, and the fetch/hit/miss/eviction statistics that
   make the paper's 1982 cost model (pages read from disk) measurable on
   the in-memory substrate. *)

type stats = {
  mutable fetches : int;  (* page requests *)
  mutable misses : int;  (* requests that had to "read from disk" *)
  mutable evictions : int;
  mutable invalidations : int;  (* pages dropped by file rewrites *)
}

type t = {
  capacity : int;
  resident : (int * int, int) Hashtbl.t;  (* (file, page) -> last-used tick *)
  mutable tick : int;
  stats : stats;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Buffer_pool.create: capacity";
  {
    capacity;
    resident = Hashtbl.create (2 * capacity);
    tick = 0;
    stats = { fetches = 0; misses = 0; evictions = 0; invalidations = 0 };
  }

(* O(resident) fold to find the LRU victim — up to O(capacity) per miss
   once the pool is full.  Acceptable at the pool sizes the substrate
   simulates (a few dozen frames); an intrusive doubly-linked list would
   make this O(1) if pools ever grow. *)
let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key tick acc ->
        match acc with
        | Some (_, best) when best <= tick -> acc
        | _ -> Some (key, tick))
      t.resident None
  in
  match victim with
  | Some (key, _) ->
    Hashtbl.remove t.resident key;
    t.stats.evictions <- t.stats.evictions + 1;
    Obs.Metrics.incr "pool.evictions"
  | None -> ()

(* Record an access to [page] of [file]; returns [true] on a hit. *)
let access t ~file ~page =
  let key = (file, page) in
  t.tick <- t.tick + 1;
  t.stats.fetches <- t.stats.fetches + 1;
  Obs.Metrics.incr "pool.fetches";
  match Hashtbl.find_opt t.resident key with
  | Some _ ->
    Hashtbl.replace t.resident key t.tick;
    true
  | None ->
    t.stats.misses <- t.stats.misses + 1;
    Obs.Metrics.incr "pool.misses";
    if Hashtbl.length t.resident >= t.capacity then evict_lru t;
    Hashtbl.replace t.resident key t.tick;
    false

(* Drop a file's pages (the file was rewritten).  Dropped pages are
   counted as [invalidations], not [evictions]: they leave the pool for
   a different reason than capacity pressure, and the eviction count
   must keep satisfying fetches = hits + misses bookkeeping under the
   LRU experiments. *)
let invalidate_file t ~file =
  let keys =
    Hashtbl.fold
      (fun (f, p) _ acc -> if f = file then (f, p) :: acc else acc)
      t.resident []
  in
  List.iter (Hashtbl.remove t.resident) keys;
  let n = List.length keys in
  if n > 0 then begin
    t.stats.invalidations <- t.stats.invalidations + n;
    Obs.Metrics.incr ~by:n "pool.invalidations"
  end

let stats t = t.stats

let reset_stats t =
  t.stats.fetches <- 0;
  t.stats.misses <- 0;
  t.stats.evictions <- 0;
  t.stats.invalidations <- 0

let resident_count t = Hashtbl.length t.resident

let hit_rate s =
  if s.fetches = 0 then 0.0
  else float_of_int (s.fetches - s.misses) /. float_of_int s.fetches

let pp_stats ppf s =
  Fmt.pf ppf "fetches %d, misses %d (%.1f%%), evictions %d, invalidations %d"
    s.fetches s.misses
    (if s.fetches = 0 then 0.0
     else 100.0 *. float_of_int s.misses /. float_of_int s.fetches)
    s.evictions s.invalidations
