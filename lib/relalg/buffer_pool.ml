(* A buffer pool over the paged heap files: a fixed number of frames
   with LRU replacement, and the fetch/hit/miss/eviction statistics that
   make the paper's 1982 cost model (pages read from disk) measurable on
   the in-memory substrate.

   Recency is an intrusive doubly-linked list threaded through the
   frames (most-recent at the head), so a hit's move-to-front and a
   miss's eviction are both O(1) — the previous implementation scanned
   all resident frames for the minimum tick on every eviction. *)

type stats = {
  mutable fetches : int;  (* page requests *)
  mutable misses : int;  (* requests that had to "read from disk" *)
  mutable evictions : int;
  mutable invalidations : int;  (* pages dropped by file rewrites *)
}

type node = {
  key : int * int;  (* (file, page) *)
  mutable prev : node option;  (* towards the MRU head *)
  mutable next : node option;  (* towards the LRU tail *)
}

type t = {
  capacity : int;
  resident : (int * int, node) Hashtbl.t;
  mutable head : node option;  (* most recently used *)
  mutable tail : node option;  (* least recently used: the victim *)
  stats : stats;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Buffer_pool.create: capacity";
  {
    capacity;
    resident = Hashtbl.create (2 * capacity);
    head = None;
    tail = None;
    stats = { fetches = 0; misses = 0; evictions = 0; invalidations = 0 };
  }

let unlink t n =
  (match n.prev with
  | Some p -> p.next <- n.next
  | None -> t.head <- n.next);
  (match n.next with
  | Some s -> s.prev <- n.prev
  | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

(* Evict the LRU tail in O(1).  Consults the [pool.evict.io] failpoint:
   a fired site models a failed write-back of the victim frame — the
   pool is left unchanged and {!Errors.Io_error} is raised. *)
let evict_lru t =
  match t.tail with
  | None -> ()
  | Some victim ->
    if Failpoint.should_fire "pool.evict.io" then begin
      Obs.Metrics.incr "pool.evict_io_failures";
      Errors.io_error
        "pool.evict.io: write-back of victim page (%d, %d) failed"
        (fst victim.key) (snd victim.key)
    end;
    unlink t victim;
    Hashtbl.remove t.resident victim.key;
    t.stats.evictions <- t.stats.evictions + 1;
    Obs.Metrics.incr "pool.evictions"

(* Record an access to [page] of [file]; returns [true] on a hit. *)
let access t ~file ~page =
  let key = (file, page) in
  t.stats.fetches <- t.stats.fetches + 1;
  Obs.Metrics.incr "pool.fetches";
  match Hashtbl.find_opt t.resident key with
  | Some n ->
    (match t.head with
    | Some h when h == n -> ()  (* already the MRU *)
    | _ ->
      unlink t n;
      push_front t n);
    true
  | None ->
    t.stats.misses <- t.stats.misses + 1;
    Obs.Metrics.incr "pool.misses";
    if Hashtbl.length t.resident >= t.capacity then evict_lru t;
    let n = { key; prev = None; next = None } in
    push_front t n;
    Hashtbl.replace t.resident key n;
    false

(* Drop a file's pages (the file was rewritten, or a checksum failure
   forced an invalidate-and-refetch).  Dropped pages are counted as
   [invalidations], not [evictions]: they leave the pool for a different
   reason than capacity pressure, and the eviction count must keep
   satisfying fetches = hits + misses bookkeeping under the LRU
   experiments. *)
let invalidate_file t ~file =
  let nodes =
    Hashtbl.fold
      (fun (f, _) n acc -> if f = file then n :: acc else acc)
      t.resident []
  in
  List.iter
    (fun n ->
      unlink t n;
      Hashtbl.remove t.resident n.key)
    nodes;
  let count = List.length nodes in
  if count > 0 then begin
    t.stats.invalidations <- t.stats.invalidations + count;
    Obs.Metrics.incr ~by:count "pool.invalidations"
  end

let stats t = t.stats

let reset_stats t =
  t.stats.fetches <- 0;
  t.stats.misses <- 0;
  t.stats.evictions <- 0;
  t.stats.invalidations <- 0

let resident_count t = Hashtbl.length t.resident

(* Resident (file, page) keys from most- to least-recently used: the
   reverse of eviction order.  For tests and diagnostics. *)
let resident_keys_mru t =
  let rec walk acc = function
    | None -> List.rev acc
    | Some n -> walk (n.key :: acc) n.next
  in
  walk [] t.head

let hit_rate s =
  if s.fetches = 0 then 0.0
  else float_of_int (s.fetches - s.misses) /. float_of_int s.fetches

let pp_stats ppf s =
  Fmt.pf ppf "fetches %d, misses %d (%.1f%%), evictions %d, invalidations %d"
    s.fetches s.misses
    (if s.fetches = 0 then 0.0
     else 100.0 *. float_of_int s.misses /. float_of_int s.fetches)
    s.evictions s.invalidations
