(* Keyed relations: the PASCAL/R RELATION type.

   A relation is a mutable set of identically structured tuples in which
   the declared key functionally determines the element.  Element access
   by key value is the paper's *selected variable* rel[keyval]
   (Section 3.1); [scan] is the one-element-at-a-time read of the
   FOR EACH loops of Examples 4.2/4.3 and is instrumented with a scan
   counter so the benchmark harness can verify strategy 1's claim that
   "each range relation is read no more than once". *)

module Key_table = Hashtbl.Make (struct
  type t = Value.t list

  let equal = List.equal Value.equal
  let hash k = List.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 k
end)

type backing = {
  hf : Heap_file.t;
  pool : Buffer_pool.t;
  mutable dirty : bool;  (* deletions force a rebuild before the next scan *)
}

(* Content-change events, delivered to registered observers on every
   *effective* mutation (an idempotent re-insert or a miss delete fires
   nothing).  The database layer hooks secondary indexes in through
   these, so index maintenance rides every mutation path — direct
   handle writes, transaction copies, WAL replay — without the relation
   knowing what an index is. *)
type event = Inserted of Tuple.t | Deleted of Tuple.t | Cleared

type t = {
  name : string;
  schema : Schema.t;
  tbl : Tuple.t Key_table.t;
  mutable scans : int;   (* completed full scans *)
  mutable probes : int;  (* key lookups *)
  mutable version : int;
      (* bumped on every content change (insert/delete/clear); feeds the
         database stats epoch that invalidates cached plans *)
  mutable backing : backing option;
  mutable frozen : bool;
      (* committed state of a durable database: snapshot readers may be
         iterating this relation, so content mutation must go through a
         write transaction's private copy *)
  mutable observers : (event -> unit) list;
      (* not carried by [copy]: a transaction's private copy starts
         unobserved and the database layer attaches its own hooks *)
}

(* [size_hint] presizes the key table: operators that know their output
   bound (a stream materialization knows its source cardinality)
   allocate the buckets once instead of growing through the doubling
   ladder.  Purely a capacity hint — contents and semantics are
   unaffected. *)
let create ?(name = "") ?(size_hint = 0) schema =
  {
    name;
    schema;
    tbl = Key_table.create (max 64 size_hint);
    scans = 0;
    probes = 0;
    version = 0;
    backing = None;
    frozen = false;
    observers = [];
  }

let add_observer r f = r.observers <- f :: r.observers
let clear_observers r = r.observers <- []

let notify r ev =
  match r.observers with [] -> () | obs -> List.iter (fun f -> f ev) obs

let version r = r.version

(* MVCC lineage continuation: a write transaction's private copy starts
   at the version of the relation state it was copied from, so the
   database stats epoch stays strictly monotone across installs (a
   fresh copy's version would otherwise reset to its cardinality and
   collide with an earlier epoch, letting a stale cached plan hit). *)
let set_version r v = r.version <- v
let freeze r = r.frozen <- true
let frozen r = r.frozen

let check_unfrozen r op =
  if r.frozen then
    Errors.frozen
      "relation %s: %s on a frozen (snapshot-visible) state; mutate through \
       a write transaction"
      r.name op

let name r = r.name
let schema r = r.schema
let cardinality r = Key_table.length r.tbl
let is_empty r = cardinality r = 0

let check_tuple r t =
  if Tuple.arity t <> Schema.arity r.schema then
    Errors.type_error "relation %s: tuple %s has arity %d, expected %d" r.name
      (Tuple.to_string t) (Tuple.arity t) (Schema.arity r.schema)
  else if not (Tuple.well_typed r.schema t) then
    Errors.type_error "relation %s: tuple %s violates attribute domains"
      r.name (Tuple.to_string t)

(* PASCAL/R insertion [:+].  Inserting an element already present is a
   no-op; inserting a different element with the same key violates the
   key constraint. *)
let insert r t =
  check_unfrozen r "insert";
  check_tuple r t;
  let key = Tuple.key_of r.schema t in
  match Key_table.find_opt r.tbl key with
  | None ->
    Key_table.replace r.tbl key t;
    r.version <- r.version + 1;
    Obs.Metrics.incr "relation.inserts";
    notify r (Inserted t);
    (match r.backing with
    | Some b -> (
      (* A failed append (torn write) leaves the heap file damaged while
         the key table — the authoritative copy — already holds the
         tuple; mark the backing dirty so the next scan rebuilds it. *)
      try Heap_file.append b.hf (Codec.encode_tuple r.schema t)
      with e ->
        b.dirty <- true;
        raise e)
    | None -> ())
  | Some existing ->
    if not (Tuple.equal existing t) then
      raise
        (Errors.Duplicate_key
           (Fmt.str "relation %s: key %a already bound to %a, cannot insert %a"
              r.name
              (Fmt.list ~sep:Fmt.comma Value.pp)
              key Tuple.pp existing Tuple.pp t))

let insert_list r ts = List.iter (insert r) ts

(* Fast-path insertion for operator outputs whose tuples are well typed
   by construction (projections/concatenations of tuples read from
   already-checked relations, under the derived schema).  Intended for
   whole-tuple-key intermediates only: under a whole-tuple key a
   duplicate key IS an equal tuple, so the unconditional [replace]
   stores the same set either way and [Hashtbl.replace] keeps the
   bucket position, leaving iteration order untouched.  The single
   [replace] hashes the key once where a mem-then-replace pair would
   hash twice; growth is detected by the table's length. *)
let insert_unchecked r t =
  check_unfrozen r "insert";
  let key = Tuple.key_of r.schema t in
  let before = Key_table.length r.tbl in
  Key_table.replace r.tbl key t;
  if Key_table.length r.tbl <> before then begin
    r.version <- r.version + 1;
    Obs.Metrics.incr "relation.inserts";
    notify r (Inserted t);
    match r.backing with
    | Some b -> (
      try Heap_file.append b.hf (Codec.encode_tuple r.schema t)
      with e ->
        b.dirty <- true;
        raise e)
    | None -> ()
  end

let delete_key r key =
  check_unfrozen r "delete";
  r.probes <- r.probes + 1;
  Obs.Metrics.incr "relation.probes";
  (match Key_table.find_opt r.tbl key with
  | Some victim ->
    Key_table.remove r.tbl key;
    r.version <- r.version + 1;
    notify r (Deleted victim)
  | None -> ());
  match r.backing with Some b -> b.dirty <- true | None -> ()

let clear r =
  check_unfrozen r "clear";
  if Key_table.length r.tbl > 0 then begin
    r.version <- r.version + 1;
    Key_table.reset r.tbl;
    notify r Cleared
  end
  else Key_table.reset r.tbl;
  match r.backing with Some b -> b.dirty <- true | None -> ()

(* Selected variable rel[keyval]. *)
let find_key r key =
  r.probes <- r.probes + 1;
  Obs.Metrics.incr "relation.probes";
  Key_table.find_opt r.tbl key

let find_key_exn r key =
  match find_key r key with
  | Some t -> t
  | None ->
    raise
      (Errors.Dangling_reference
         (Fmt.str "%s[%a]" r.name (Fmt.list ~sep:Fmt.comma Value.pp) key))

let mem_key r key =
  r.probes <- r.probes + 1;
  Obs.Metrics.incr "relation.probes";
  Key_table.mem r.tbl key

let mem_tuple r t =
  match Key_table.find_opt r.tbl (Tuple.key_of r.schema t) with
  | Some t' -> Tuple.equal t t'
  | None -> false

(* Uninstrumented iteration (administrative walks: printing, copying). *)
let iter f r = Key_table.iter (fun _ t -> f t) r.tbl
let fold f init r = Key_table.fold (fun _ t acc -> f acc t) r.tbl init

(* Rebuild a dirty heap file from the current contents.  The dirty flag
   drops only once the rebuild completes, so a fault mid-rebuild (e.g.
   an injected torn write) leaves the backing marked for another
   rebuild rather than silently half-built. *)
let rebuild_backing r b =
  b.dirty <- true;
  Heap_file.clear b.hf;
  Buffer_pool.invalidate_file b.pool ~file:(Heap_file.file_id b.hf);
  iter (fun t -> Heap_file.append b.hf (Codec.encode_tuple r.schema t)) r;
  b.dirty <- false

(* Attach paged storage: the current contents are written to a fresh
   heap file; from now on full scans decode the pages through [pool]
   (whose miss count is the simulated disk I/O), and insertions append
   to the file.  Deletions mark the file dirty; it is rebuilt before the
   next scan. *)
let attach_storage r ~pool =
  let b = { hf = Heap_file.create (); pool; dirty = false } in
  r.backing <- Some b;
  rebuild_backing r b

let detach_storage r = r.backing <- None

let buffer_pool r =
  match r.backing with Some b -> Some b.pool | None -> None

let backing_pages r =
  match r.backing with
  | Some b -> Some (Heap_file.page_count b.hf)
  | None -> None

(* Instrumented full scan: the engine's one-element-at-a-time read.
   Paged relations decode their tuples from the heap file through the
   buffer pool.

   When the fault-injection framework is active the scan runs in a
   recoverable mode: tuples are buffered and delivered only once the
   whole file decoded cleanly, and a detected {!Errors.Corruption}
   (checksum mismatch, short read, undecodable record) triggers one
   invalidate-and-rebuild from the authoritative key table before the
   error is allowed to surface.  With no failpoint armed the original
   zero-copy streaming path runs unchanged. *)
let scan f r =
  r.scans <- r.scans + 1;
  Obs.Metrics.incr "relation.scans";
  match r.backing with
  | None -> iter f r
  | Some b ->
    if b.dirty then rebuild_backing r b;
    if not (Failpoint.any_armed ()) then
      Heap_file.iter ~pool:b.pool b.hf (fun bytes ->
          f (Codec.decode_tuple r.schema bytes))
    else begin
      let decode_all () =
        let acc = ref [] in
        Heap_file.iter ~pool:b.pool b.hf (fun bytes ->
            acc := Codec.decode_tuple r.schema bytes :: !acc);
        List.rev !acc
      in
      let tuples =
        try decode_all ()
        with Errors.Corruption _ ->
          (* Invalidate the damaged file's frames, refetch by rebuilding
             from the key table, and retry once; a second corruption
             (e.g. an every-K trigger) propagates as the typed error. *)
          Obs.Metrics.incr "storage.recovery_rebuilds";
          rebuild_backing r b;
          decode_all ()
      in
      List.iter f tuples
    end

let scan_fold f init r =
  match r.backing with
  | None ->
    r.scans <- r.scans + 1;
    Obs.Metrics.incr "relation.scans";
    fold f init r
  | Some _ ->
    let acc = ref init in
    scan (fun t -> acc := f !acc t) r;
    !acc

(* Counted snapshot in scan order: the accessor parallel execution uses
   to hand worker domains an immutable view of the contents.  Costs one
   instrumented scan — exactly what the serial engine spends to read
   the relation once — so scan counters stay identical between jobs=1
   and jobs>1 runs.  Workers must never touch [t] itself: the counters,
   version and paged backing are unsynchronized. *)
let to_array r =
  let acc = ref [] in
  scan (fun t -> acc := t :: !acc) r;
  Array.of_list (List.rev !acc)

(* Same snapshot through the uninstrumented [iter] — for parallelizing
   call sites whose serial form also reads via [iter] (the stream
   pipeline source). *)
let to_array_uncounted r =
  let acc = ref [] in
  iter (fun t -> acc := t :: !acc) r;
  Array.of_list (List.rev !acc)

(* Short-circuiting quantifiers: [for_all] sits on the division and
   [equal_set] paths, so bail out on the first witness instead of
   folding the whole key table. *)
exception Decided

let exists p r =
  try
    iter (fun t -> if p t then raise Decided) r;
    false
  with Decided -> true

let for_all p r =
  try
    iter (fun t -> if not (p t) then raise Decided) r;
    true
  with Decided -> false

let scan_count r = r.scans
let probe_count r = r.probes

let reset_counters r =
  r.scans <- 0;
  r.probes <- 0

let to_list r = List.sort Tuple.compare (fold (fun acc t -> t :: acc) [] r)

let of_list ?name schema ts =
  let r = create ?name schema in
  insert_list r ts;
  r

let copy ?name r =
  let fresh = create ~name:(Option.value name ~default:r.name) r.schema in
  iter (insert fresh) r;
  fresh

let equal_set a b =
  cardinality a = cardinality b
  && for_all (fun t -> mem_tuple b t) a

let subset a b = for_all (fun t -> mem_tuple b t) a

let pp ppf r =
  Fmt.pf ppf "@[<v2>%s (%d elements):@ %a@]"
    (if String.equal r.name "" then "<anonymous>" else r.name)
    (cardinality r)
    (Fmt.list ~sep:Fmt.cut Tuple.pp)
    (to_list r)
